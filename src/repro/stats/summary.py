"""Streaming summary statistics (count / mean / variance / min / max).

Implements Welford's online algorithm so that long runs (10 simulated
minutes, hundreds of thousands of packets per flow) never need to hold all
samples for the *summary* numbers.  Percentiles, which the paper also
reports, are handled by :mod:`repro.stats.percentile`.
"""

from __future__ import annotations

import math


class SummaryStats:
    """Online mean/variance/min/max accumulator (Welford)."""

    __slots__ = ("count", "_mean", "_m2", "min", "max", "total")

    def __init__(self):
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.total = 0.0

    def add(self, value: float) -> None:
        """Record one sample."""
        self.count += 1
        self.total += value
        delta = value - self._mean
        self._mean += delta / self.count
        self._m2 += delta * (value - self._mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Sample mean; 0.0 when empty (callers check ``count`` if they care)."""
        return self._mean if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (divides by n); 0.0 for fewer than 2 samples."""
        return self._m2 / self.count if self.count >= 2 else 0.0

    @property
    def sample_variance(self) -> float:
        """Unbiased sample variance (divides by n-1)."""
        return self._m2 / (self.count - 1) if self.count >= 2 else 0.0

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    def merge(self, other: "SummaryStats") -> None:
        """Fold another accumulator into this one (parallel merge formula)."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self._mean = other._mean
            self._m2 = other._m2
            self.min = other.min
            self.max = other.max
            self.total = other.total
            return
        n1, n2 = self.count, other.count
        delta = other._mean - self._mean
        total = n1 + n2
        self._mean += delta * n2 / total
        self._m2 += other._m2 + delta * delta * n1 * n2 / total
        self.count = total
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if not self.count:
            return "<SummaryStats empty>"
        return (
            f"<SummaryStats n={self.count} mean={self.mean:.4g} "
            f"min={self.min:.4g} max={self.max:.4g}>"
        )
