"""Time-weighted statistics and rate meters.

Link utilization (the paper reports 83.5 % and >99 % link loads) is a
*time-weighted* quantity: the fraction of wall-clock time the link spends
transmitting.  Queue occupancy averages are likewise time-weighted.  The
:class:`RateMeter` measures event rates (packets/s, bits/s) over the run and
over sliding intervals for the measurement-based admission controller.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class TimeWeightedValue:
    """Tracks the time integral of a piecewise-constant value.

    Typical use: queue length or link busy flag.  Call ``update(now, value)``
    whenever the value changes; ``average(now)`` gives the time average since
    the start (or since the last ``reset``).
    """

    def __init__(self, start_time: float = 0.0, initial: float = 0.0):
        self._start = start_time
        self._last_time = start_time
        self._value = initial
        self._integral = 0.0
        self._max = initial

    @property
    def value(self) -> float:
        return self._value

    @property
    def max(self) -> float:
        return self._max

    def update(self, now: float, value: float) -> None:
        """Record that the tracked quantity changed to ``value`` at ``now``."""
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        self._integral += self._value * (now - self._last_time)
        self._last_time = now
        self._value = value
        if value > self._max:
            self._max = value

    def integral(self, now: float) -> float:
        """Time integral of the value from start to ``now``."""
        return self._integral + self._value * (now - self._last_time)

    def average(self, now: float) -> float:
        """Time-weighted average from start to ``now``; 0 on zero elapsed."""
        elapsed = now - self._start
        if elapsed <= 0:
            return 0.0
        return self.integral(now) / elapsed

    def reset(self, now: float) -> None:
        """Restart the averaging window at ``now`` (value is kept)."""
        self._start = now
        self._last_time = now
        self._integral = 0.0
        self._max = self._value


class RateMeter:
    """Measures an event rate both cumulatively and over a sliding window.

    ``add(now, amount)`` records ``amount`` units (bits, packets) at ``now``.
    ``cumulative_rate(now)`` is total/elapsed; ``windowed_rate(now)`` is the
    rate over the trailing ``window`` seconds — the measured utilization
    nu-hat of the admission controller (Section 9) uses this.
    """

    def __init__(self, window: float = 1.0, start_time: float = 0.0):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._start = start_time
        self._total = 0.0
        self._events: Deque[Tuple[float, float]] = deque()
        self._window_sum = 0.0

    @property
    def total(self) -> float:
        return self._total

    def add(self, now: float, amount: float = 1.0) -> None:
        self._total += amount
        self._events.append((now, amount))
        self._window_sum += amount
        self._evict(now)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        events = self._events
        while events and events[0][0] <= cutoff:
            __, amount = events.popleft()
            self._window_sum -= amount

    def cumulative_rate(self, now: float) -> float:
        elapsed = now - self._start
        if elapsed <= 0:
            return 0.0
        return self._total / elapsed

    def windowed_rate(self, now: float) -> float:
        self._evict(now)
        # Before a full window has elapsed, divide by actual elapsed time so
        # early admission decisions are not biased low.
        span = min(self.window, max(now - self._start, 1e-12))
        return self._window_sum / span
