"""Sliding-window extrema and summaries.

Section 9's admission heuristic needs "consistently conservative" measured
quantities: the measured maximal delay d-hat_j of each class and measured
utilization.  A sliding-window maximum (monotone deque, O(1) amortized) over
a trailing interval gives exactly a "recent worst case" estimator.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.stats.summary import SummaryStats


class SlidingWindowMax:
    """Maximum of samples within the trailing ``window`` seconds."""

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        # Monotone non-increasing deque of (time, value).
        self._deque: Deque[Tuple[float, float]] = deque()

    def add(self, now: float, value: float) -> None:
        dq = self._deque
        while dq and dq[-1][1] <= value:
            dq.pop()
        dq.append((now, value))
        self._evict(now)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        dq = self._deque
        while dq and dq[0][0] <= cutoff:
            dq.popleft()

    def max(self, now: float, default: float = 0.0) -> float:
        """Max over the trailing window; ``default`` if no recent samples."""
        self._evict(now)
        return self._deque[0][1] if self._deque else default

    def __len__(self) -> int:
        return len(self._deque)


class SlidingWindowStats:
    """Windowed sample statistics rebuilt from a deque of samples.

    Keeps (time, value) pairs within the window; mean/max queries are O(n)
    over retained samples.  Suitable for the measurement sampling rates used
    here (admission probes run at ~10 Hz, not per-packet).
    """

    def __init__(self, window: float):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._samples: Deque[Tuple[float, float]] = deque()

    def add(self, now: float, value: float) -> None:
        self._samples.append((now, value))
        self._evict(now)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window
        while self._samples and self._samples[0][0] <= cutoff:
            self._samples.popleft()

    def snapshot(self, now: float) -> SummaryStats:
        """Summary of samples currently inside the window."""
        self._evict(now)
        stats = SummaryStats()
        for __, value in self._samples:
            stats.add(value)
        return stats

    def mean(self, now: float, default: float = 0.0) -> float:
        snap = self.snapshot(now)
        return snap.mean if snap.count else default

    def max(self, now: float, default: float = 0.0) -> float:
        snap = self.snapshot(now)
        return snap.max if snap.count else default

    def __len__(self) -> int:
        return len(self._samples)
