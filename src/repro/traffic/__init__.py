"""Traffic generation, characterization, and measurement.

Implements the Appendix workload (two-state Markov on/off sources pushed
through an (A, 50) token bucket) plus the filters of Section 4 and the
delay-recording sinks behind every table in the paper.
"""

from repro.traffic.token_bucket import (
    TokenBucket,
    TokenBucketFilter,
    NonconformingPolicy,
    minimal_bucket_depth,
)
from repro.traffic.leaky_bucket import FluidLeakyBucket
from repro.traffic.onoff import OnOffMarkovSource, OnOffParams
from repro.traffic.cbr import CbrSource
from repro.traffic.poisson import PoissonSource
from repro.traffic.trace import TraceSource
from repro.traffic.sink import DelayRecordingSink
from repro.traffic.characterize import (
    SourceCharacterization,
    average_rate_bps,
    bucket_curve,
    choose_rate,
    delay_curve,
    peak_rate_bps,
)

__all__ = [
    "TokenBucket",
    "TokenBucketFilter",
    "NonconformingPolicy",
    "minimal_bucket_depth",
    "FluidLeakyBucket",
    "OnOffMarkovSource",
    "OnOffParams",
    "CbrSource",
    "PoissonSource",
    "TraceSource",
    "DelayRecordingSink",
    "SourceCharacterization",
    "average_rate_bps",
    "bucket_curve",
    "choose_rate",
    "delay_curve",
    "peak_rate_bps",
]
