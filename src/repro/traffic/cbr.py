"""Constant-bit-rate source.

Models the non-bursty real-time devices the paper contrasts with (fixed-rate
codecs); used by examples and by tests that need perfectly predictable load.
"""

from __future__ import annotations

from typing import Optional

from repro.net.node import Host
from repro.net.packet import ServiceClass
from repro.sim.engine import Simulator
from repro.traffic.source import PacketSource
from repro.traffic.token_bucket import TokenBucketFilter


class CbrSource(PacketSource):
    """Emits one packet every ``1/rate_pps`` seconds.

    Args:
        rate_pps: packet rate.
        start_offset: delay before the first packet (stagger CBR sources to
            avoid phase artifacts).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        destination: str,
        rate_pps: float,
        packet_size_bits: int = 1000,
        service_class: ServiceClass = ServiceClass.DATAGRAM,
        priority_class: int = 0,
        source_filter: Optional[TokenBucketFilter] = None,
        start_offset: float = 0.0,
    ):
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        super().__init__(
            sim,
            host,
            flow_id,
            destination,
            packet_size_bits,
            service_class,
            priority_class,
            source_filter,
        )
        self.rate_pps = rate_pps
        self._interval = 1.0 / rate_pps
        sim.schedule(start_offset, self._tick)

    def _tick(self) -> None:
        if self.stopped:
            return
        self.emit()
        self.sim.schedule(self._interval, self._tick)
