"""Source self-characterization: the b(r) curve (Section 4).

"For a given traffic generation process, we can define the non-increasing
function b(r) as the minimal value such that the process conforms to a
(r, b(r)) filter."  This is how a guaranteed-service client does its
private math in the Section 8 interface: the network sees only the clock
rate r; the client uses its own b(r) knowledge to know that its worst-case
queueing delay is b(r)/r, and picks the cheapest r meeting its delay
target.

This module turns a recorded packet trace (or any (time, size) sequence)
into that curve and the derived decisions:

* :func:`bucket_curve` — b(r) sampled over a rate grid;
* :func:`delay_curve` — the induced worst-case bound curve b(r)/r;
* :func:`choose_rate` — the smallest sampled rate whose fluid bound meets
  a delay target (the Section 8 sizing step);
* :class:`SourceCharacterization` — a bundled view with peak/average rate
  bookends, suitable for printing next to an admission request.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from repro.traffic.token_bucket import minimal_bucket_depth

Arrivals = Sequence[Tuple[float, float]]  # (time_seconds, size_bits)


def _validate(arrivals: Arrivals) -> None:
    if not arrivals:
        raise ValueError("need at least one arrival")
    last_t = None
    for t, size in arrivals:
        if size <= 0:
            raise ValueError("packet sizes must be positive")
        if last_t is not None and t < last_t:
            raise ValueError("arrivals must be time-ordered")
        last_t = t


def average_rate_bps(arrivals: Arrivals) -> float:
    """Long-run bit rate of the trace (total bits / spanned time).

    A single-instant trace has no span; its "average" is taken as +inf
    burst — callers should rely on b(r) instead.
    """
    _validate(arrivals)
    total = sum(size for __, size in arrivals)
    span = arrivals[-1][0] - arrivals[0][0]
    if span <= 0:
        return float("inf")
    return total / span


def peak_rate_bps(arrivals: Arrivals) -> float:
    """The highest instantaneous rate between consecutive arrivals.

    Defined as size / gap for each adjacent pair; back-to-back arrivals
    (zero gap) make the peak infinite, which correctly means "no finite
    rate r gives b(r) = one packet".
    """
    _validate(arrivals)
    peak = 0.0
    for (t0, __), (t1, size) in zip(arrivals, arrivals[1:]):
        gap = t1 - t0
        if gap <= 0:
            return float("inf")
        peak = max(peak, size / gap)
    return peak


def bucket_curve(
    arrivals: Arrivals, rates_bps: Sequence[float]
) -> List[Tuple[float, float]]:
    """Sample b(r) over a rate grid.

    Returns (r, b(r)) pairs in the order given.  b(r) is non-increasing in
    r (more refill rate never needs a deeper bucket), which the property
    tests assert for arbitrary traces.
    """
    _validate(arrivals)
    if not rates_bps:
        raise ValueError("need at least one rate")
    curve = []
    for rate in rates_bps:
        if rate <= 0:
            raise ValueError("rates must be positive")
        curve.append((rate, minimal_bucket_depth(arrivals, rate)))
    return curve


def delay_curve(
    arrivals: Arrivals, rates_bps: Sequence[float]
) -> List[Tuple[float, float]]:
    """The worst-case fluid bound b(r)/r over a rate grid (seconds).

    This is the curve a guaranteed client walks down when deciding how
    much clock rate to buy.
    """
    return [
        (rate, depth / rate) for rate, depth in bucket_curve(arrivals, rates_bps)
    ]


def choose_rate(
    arrivals: Arrivals,
    target_delay_seconds: float,
    rates_bps: Sequence[float],
) -> Tuple[float, float]:
    """Smallest sampled rate whose b(r)/r meets the target.

    Returns:
        (rate, bound_seconds) for the chosen rate.

    Raises:
        ValueError: if no sampled rate meets the target (the client must
            widen its grid or accept a looser bound).
    """
    if target_delay_seconds <= 0:
        raise ValueError("target delay must be positive")
    best = None
    for rate, bound in sorted(delay_curve(arrivals, rates_bps)):
        if bound <= target_delay_seconds:
            best = (rate, bound)
            break
    if best is None:
        raise ValueError(
            f"no rate in the grid meets {target_delay_seconds}s; "
            f"tightest achievable was "
            f"{min(b for __, b in delay_curve(arrivals, rates_bps)):.4f}s"
        )
    return best


@dataclasses.dataclass
class SourceCharacterization:
    """A source's private traffic knowledge, bundled.

    Attributes:
        average_bps / peak_bps: rate bookends of the trace.
        curve: (r, b(r)) samples.
    """

    average_bps: float
    peak_bps: float
    curve: List[Tuple[float, float]]

    @classmethod
    def from_trace(
        cls, arrivals: Arrivals, rates_bps: Sequence[float]
    ) -> "SourceCharacterization":
        return cls(
            average_bps=average_rate_bps(arrivals),
            peak_bps=peak_rate_bps(arrivals),
            curve=bucket_curve(arrivals, rates_bps),
        )

    def bound_at(self, rate_bps: float) -> float:
        """b(r)/r for a sampled rate."""
        for rate, depth in self.curve:
            if rate == rate_bps:
                return depth / rate
        raise KeyError(f"rate {rate_bps} not in the sampled curve")

    def render(self, unit_seconds: float = 1.0) -> str:
        """Human-readable curve table (delays divided by ``unit_seconds``)."""
        lines = [
            f"average rate: {self.average_bps / 1000:.1f} kbit/s   "
            f"peak rate: "
            + (
                "inf"
                if self.peak_bps == float("inf")
                else f"{self.peak_bps / 1000:.1f} kbit/s"
            ),
            f"{'r (kbit/s)':>12}  {'b(r) (bits)':>12}  {'b/r bound':>10}",
        ]
        for rate, depth in self.curve:
            lines.append(
                f"{rate / 1000:>12.1f}  {depth:>12.0f}  "
                f"{depth / rate / unit_seconds:>10.2f}"
            )
        return "\n".join(lines)
