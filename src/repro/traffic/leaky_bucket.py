"""Fluid leaky bucket (Section 4, footnote 6).

In the fluid version of a leaky bucket of rate r, bits drain out at a
constant rate r and any excess queues.  The paper uses it to *motivate* the
Parekh-Gallager bound: if a source obeying an (r, b) token bucket is pushed
through a leaky bucket of rate r at the network edge, all of the flow's
queueing happens in the leaky bucket and is bounded by b/r.  Tests verify
that claim against this model.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


class FluidLeakyBucket:
    """Tracks the backlog of a fluid queue drained at a constant rate."""

    def __init__(self, rate_bps: float):
        if rate_bps <= 0:
            raise ValueError(f"drain rate must be positive, got {rate_bps}")
        self.rate_bps = float(rate_bps)
        self._backlog_bits = 0.0
        self._last_time = 0.0

    def backlog_at(self, now: float) -> float:
        """Backlog at ``now`` (before any arrival at that instant)."""
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        return max(0.0, self._backlog_bits - (now - self._last_time) * self.rate_bps)

    def offer(self, size_bits: float, now: float) -> float:
        """Add ``size_bits`` at ``now``; returns the delay of its last bit.

        The last bit departs when the whole backlog present after this
        arrival has drained: delay = backlog_after / rate.
        """
        if size_bits < 0:
            raise ValueError("size cannot be negative")
        self._backlog_bits = self.backlog_at(now) + size_bits
        self._last_time = now
        return self._backlog_bits / self.rate_bps

    def max_delay(self, arrivals: Iterable[Tuple[float, float]]) -> float:
        """Worst last-bit delay over a (time, size_bits) arrival sequence."""
        worst = 0.0
        for t, size in arrivals:
            worst = max(worst, self.offer(size, t))
        return worst


def leaky_bucket_delays(
    arrivals: List[Tuple[float, float]], rate_bps: float
) -> List[float]:
    """Delay of each arrival's last bit through a fresh leaky bucket."""
    bucket = FluidLeakyBucket(rate_bps)
    return [bucket.offer(size, t) for t, size in arrivals]
