"""The paper's two-state Markov on/off source (Appendix).

In each burst period a geometrically distributed number of packets (mean B)
is generated at peak rate P packets/s; the source then idles for an
exponentially distributed period with mean I.  The average rate A satisfies

    1/A = I/B + 1/P.

All experiments in the paper use B = 5 and P = 2A (hence I = B/(2A)), with
A = 85 packets/s, and push the output through an (A, 50-packet) token
bucket that drops about 2 % of packets at the source.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.net.node import Host
from repro.net.packet import ServiceClass
from repro.sim.engine import Simulator
from repro.sim.randomness import StreamRandom
from repro.traffic.source import PacketSource
from repro.traffic.token_bucket import TokenBucketFilter


@dataclasses.dataclass(frozen=True)
class OnOffParams:
    """Parameters of the two-state Markov process, in packets and seconds.

    Attributes:
        average_rate_pps: A, the long-run packet rate.
        mean_burst_packets: B, mean packets per burst (geometric).
        peak_rate_pps: P, the in-burst generation rate.
    """

    average_rate_pps: float
    mean_burst_packets: float = 5.0
    peak_rate_pps: Optional[float] = None  # defaults to 2A, as in the paper

    def __post_init__(self):
        if self.average_rate_pps <= 0:
            raise ValueError("average rate must be positive")
        if self.mean_burst_packets < 1:
            raise ValueError("mean burst must be at least one packet")
        peak = self.resolved_peak_rate
        if peak <= self.average_rate_pps:
            raise ValueError(
                "peak rate must exceed the average rate "
                f"(P={peak}, A={self.average_rate_pps})"
            )

    @property
    def resolved_peak_rate(self) -> float:
        return (
            self.peak_rate_pps
            if self.peak_rate_pps is not None
            else 2.0 * self.average_rate_pps
        )

    @property
    def mean_idle_seconds(self) -> float:
        """I from 1/A = I/B + 1/P  =>  I = B * (1/A - 1/P)."""
        return self.mean_burst_packets * (
            1.0 / self.average_rate_pps - 1.0 / self.resolved_peak_rate
        )

    @classmethod
    def paper_workload(cls, average_rate_pps: float = 85.0) -> "OnOffParams":
        """The Appendix configuration: B = 5, P = 2A."""
        return cls(average_rate_pps=average_rate_pps, mean_burst_packets=5.0)


class OnOffMarkovSource(PacketSource):
    """Two-state Markov source driving a host.

    Args:
        params: the (A, B, P) process parameters.
        rng: seeded stream; one per source for reproducibility.
        start_delay: emission begins after an initial idle period drawn from
            the idle distribution (desynchronizes sources) unless an
            explicit value is given here.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        destination: str,
        params: OnOffParams,
        rng: StreamRandom,
        packet_size_bits: int = 1000,
        service_class: ServiceClass = ServiceClass.DATAGRAM,
        priority_class: int = 0,
        source_filter: Optional[TokenBucketFilter] = None,
        start_delay: Optional[float] = None,
    ):
        super().__init__(
            sim,
            host,
            flow_id,
            destination,
            packet_size_bits,
            service_class,
            priority_class,
            source_filter,
        )
        self.params = params
        self.rng = rng
        self._burst_remaining = 0
        self.bursts_started = 0
        # Hoist the per-packet constants out of the emission loop: both are
        # properties that recompute a formula on every access.
        self._spacing = 1.0 / params.resolved_peak_rate
        self._mean_idle_seconds = params.mean_idle_seconds
        delay = (
            start_delay
            if start_delay is not None
            else rng.exponential(self._mean_idle_seconds)
        )
        sim.schedule(delay, self._begin_burst)

    def _begin_burst(self) -> None:
        if self.stopped:
            return
        self._burst_remaining = self.rng.geometric(self.params.mean_burst_packets)
        self.bursts_started += 1
        self._emit_next()

    def _emit_next(self) -> None:
        if self.stopped:
            return
        self.emit()
        self._burst_remaining -= 1
        spacing = self._spacing
        if self._burst_remaining > 0:
            self.sim.schedule(spacing, self._emit_next)
        else:
            # The idle period starts after the last packet's 1/P slot: the
            # paper's rate formula 1/A = I/B + 1/P counts a burst of B
            # packets as occupying B/P seconds, so the gap to the next
            # burst is 1/P + idle.  This also keeps the emission process
            # conforming to a (P, one-packet) token bucket, which is what
            # makes the clock-rate-equals-peak-rate P-G bound of Table 3
            # equal b(P)/P = one packet time per hop.
            idle = self.rng.exponential(self._mean_idle_seconds)
            self.sim.schedule(spacing + idle, self._begin_burst)

    @classmethod
    def paper_source(
        cls,
        sim: Simulator,
        host: Host,
        flow_id: str,
        destination: str,
        rng: StreamRandom,
        average_rate_pps: float = 85.0,
        bucket_packets: float = 50.0,
        packet_size_bits: int = 1000,
        service_class: ServiceClass = ServiceClass.DATAGRAM,
        priority_class: int = 0,
    ) -> "OnOffMarkovSource":
        """Build the exact Appendix source: B=5, P=2A, (A, 50) bucket, drop.

        The token bucket's units are bits: rate A*size bits/s, depth
        50*size bits.
        """
        params = OnOffParams.paper_workload(average_rate_pps)
        bucket = TokenBucketFilter(
            rate_bps=average_rate_pps * packet_size_bits,
            depth_bits=bucket_packets * packet_size_bits,
        )
        return cls(
            sim,
            host,
            flow_id,
            destination,
            params,
            rng,
            packet_size_bits=packet_size_bits,
            service_class=service_class,
            priority_class=priority_class,
            source_filter=bucket,
        )
