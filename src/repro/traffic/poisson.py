"""Poisson packet source.

Classic datagram background traffic: exponential inter-arrival times.  Used
for best-effort load in examples and in tests of the datagram service class.
"""

from __future__ import annotations

from typing import Optional

from repro.net.node import Host
from repro.net.packet import ServiceClass
from repro.sim.engine import Simulator
from repro.sim.randomness import StreamRandom
from repro.traffic.source import PacketSource
from repro.traffic.token_bucket import TokenBucketFilter


class PoissonSource(PacketSource):
    """Emits packets with exponential gaps at mean rate ``rate_pps``."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        destination: str,
        rate_pps: float,
        rng: StreamRandom,
        packet_size_bits: int = 1000,
        service_class: ServiceClass = ServiceClass.DATAGRAM,
        priority_class: int = 0,
        source_filter: Optional[TokenBucketFilter] = None,
    ):
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        super().__init__(
            sim,
            host,
            flow_id,
            destination,
            packet_size_bits,
            service_class,
            priority_class,
            source_filter,
        )
        self.rate_pps = rate_pps
        self.rng = rng
        sim.schedule(rng.exponential(1.0 / rate_pps), self._tick)

    def _tick(self) -> None:
        if self.stopped:
            return
        self.emit()
        self.sim.schedule(self.rng.exponential(1.0 / self.rate_pps), self._tick)
