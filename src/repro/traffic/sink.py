"""Delay-recording sinks.

The measurement endpoint behind every table in the paper: records, per
delivered packet, the accumulated *queueing* delay (the paper's metric,
excluding transmission and propagation) and the end-to-end delay, plus
counts for conservation checks.
"""

from __future__ import annotations

from typing import Optional

from repro.net.node import Host
from repro.net.packet import Packet
from repro.sim.engine import Simulator
from repro.stats.percentile import PercentileTracker
from repro.stats.summary import SummaryStats


class DelayRecordingSink:
    """Registers as the flow handler on a host and records delays.

    Args:
        warmup: samples arriving before this simulation time are counted
            but excluded from the statistics (transient removal; the
            experiments discard the first seconds of each run).
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        warmup: float = 0.0,
    ):
        self.sim = sim
        self.flow_id = flow_id
        self.warmup = warmup
        self.received = 0
        self.recorded = 0
        self.queueing = SummaryStats()
        self.queueing_pct = PercentileTracker()
        self.end_to_end = SummaryStats()
        self.last_arrival: Optional[float] = None
        host.register_flow_handler(flow_id, self.on_packet)

    def on_packet(self, packet: Packet) -> None:
        now = self.sim.now
        self.received += 1
        self.last_arrival = now
        if now < self.warmup:
            return
        self.recorded += 1
        self.queueing.add(packet.queueing_delay)
        self.queueing_pct.add(packet.queueing_delay)
        self.end_to_end.add(now - packet.created_at)

    # Convenience accessors in the paper's reporting unit --------------
    def mean_queueing(self, unit_seconds: float = 1.0) -> float:
        """Mean queueing delay, expressed in multiples of ``unit_seconds``
        (the paper uses the 1 ms packet transmission time as the unit)."""
        return self.queueing.mean / unit_seconds

    def percentile_queueing(self, pct: float, unit_seconds: float = 1.0) -> float:
        return self.queueing_pct.percentile(pct) / unit_seconds

    def max_queueing(self, unit_seconds: float = 1.0) -> float:
        return self.queueing.max / unit_seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DelayRecordingSink {self.flow_id} n={self.recorded}>"
