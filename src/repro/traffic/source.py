"""Base machinery shared by packet sources.

A source owns a flow identity (flow id, destination, service class,
predicted priority class), stamps sequence numbers, optionally pushes each
packet through a source-side token bucket filter (the Appendix drops
nonconforming packets *at the source*), and injects survivors into its host.
"""

from __future__ import annotations

from typing import Optional

from repro.net.node import Host
from repro.net.packet import Packet, ServiceClass
from repro.sim.engine import Simulator
from repro.traffic.token_bucket import TokenBucketFilter


class PacketSource:
    """Common state and emission path for all traffic sources."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        destination: str,
        packet_size_bits: int = 1000,
        service_class: ServiceClass = ServiceClass.DATAGRAM,
        priority_class: int = 0,
        source_filter: Optional[TokenBucketFilter] = None,
    ):
        if packet_size_bits <= 0:
            raise ValueError("packet size must be positive")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.destination = destination
        self.packet_size_bits = packet_size_bits
        self.service_class = service_class
        self.priority_class = priority_class
        self.source_filter = source_filter
        self.generated = 0
        self.sent = 0
        self.filtered = 0
        self._next_seq = 0
        self._stopped = False

    def stop(self) -> None:
        """Stop emitting (pending timer events become no-ops)."""
        self._stopped = True

    @property
    def stopped(self) -> bool:
        return self._stopped

    def emit(self) -> Optional[Packet]:
        """Generate one packet now; filter, stamp, and send it.

        Returns the packet if it entered the network, None if the source
        filter dropped it.
        """
        now = self.sim.now
        packet = Packet(
            flow_id=self.flow_id,
            size_bits=self.packet_size_bits,
            created_at=now,
            source=self.host.name,
            destination=self.destination,
            service_class=self.service_class,
            priority_class=self.priority_class,
            sequence=self._next_seq,
        )
        self._next_seq += 1
        self.generated += 1
        if self.source_filter is not None and not self.source_filter.check(packet, now):
            self.filtered += 1
            return None
        self.sent += 1
        self.host.send(packet)
        return packet
