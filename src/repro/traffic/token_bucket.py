"""Token bucket traffic filters (Section 4).

A source conforms to an (r, b) token bucket if, with the bucket starting
full (n_0 = b) and refilling continuously at rate r up to depth b, every
packet of size p finds at least p tokens:

    n_i = MIN[b, n_{i-1} + (t_i - t_{i-1}) * r - p_i]  must stay >= 0.

The paper uses the token bucket in three roles, all implemented here:

* **Source-side shaping** (Appendix): each on/off source is subjected to an
  (A, 50-packet) bucket and nonconforming packets are *dropped at the
  source* (about 2 % in the paper's workload).
* **Edge enforcement** (Section 8): the first switch checks predicted-
  service flows against their declared filter, dropping or *tagging*
  nonconforming packets; later switches never re-check.
* **Characterization** (Section 4): the non-increasing function b(r), the
  minimal depth at which a given packet sequence conforms, feeds the
  Parekh-Gallager bound b(r)/r.  :func:`minimal_bucket_depth` computes it.

Units: tokens are *bits* (packet sizes are bits); rates are bits/s.  The
experiment layer converts the paper's packets/s parameters explicitly.
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Optional, Tuple

from repro.net.packet import Packet


class NonconformingPolicy(enum.Enum):
    """What an enforcement point does with a nonconforming packet (§8)."""

    DROP = "drop"
    TAG = "tag"


class TokenBucket:
    """The (r, b) token bucket state machine.

    Args:
        rate_bps: token fill rate r in bits/s.
        depth_bits: bucket depth b in bits.
        full_at_start: the paper's definition starts the bucket full
            (n_0 = b); tests may start it empty.
    """

    def __init__(self, rate_bps: float, depth_bits: float, full_at_start: bool = True):
        if rate_bps <= 0:
            raise ValueError(f"token rate must be positive, got {rate_bps}")
        if depth_bits <= 0:
            raise ValueError(f"bucket depth must be positive, got {depth_bits}")
        self.rate_bps = float(rate_bps)
        self.depth_bits = float(depth_bits)
        self._tokens = self.depth_bits if full_at_start else 0.0
        self._last_time = 0.0

    def tokens_at(self, now: float) -> float:
        """Token level at ``now`` without consuming anything."""
        if now < self._last_time:
            raise ValueError(f"time went backwards: {now} < {self._last_time}")
        return min(
            self.depth_bits, self._tokens + (now - self._last_time) * self.rate_bps
        )

    def try_consume(self, size_bits: float, now: float) -> bool:
        """Refill to ``now`` and consume ``size_bits`` if available.

        Returns True (conforming, tokens consumed) or False (nonconforming,
        nothing consumed).
        """
        level = self.tokens_at(now)
        self._last_time = now
        if level >= size_bits:
            self._tokens = level - size_bits
            return True
        self._tokens = level
        return False

    def conformance_deficit(self, size_bits: float, now: float) -> float:
        """How many bits short of conforming a packet would be (0 if ok)."""
        return max(0.0, size_bits - self.tokens_at(now))


class TokenBucketFilter:
    """An enforcement point wrapping a :class:`TokenBucket` (Sections 4, 8).

    Call :meth:`check` on each packet; the filter either passes it, tags it
    (sets ``packet.tagged``), or reports it for dropping, per the policy.
    """

    def __init__(
        self,
        rate_bps: float,
        depth_bits: float,
        policy: NonconformingPolicy = NonconformingPolicy.DROP,
    ):
        self.bucket = TokenBucket(rate_bps, depth_bits)
        self.policy = policy
        self.conforming = 0
        self.nonconforming = 0

    def check(self, packet: Packet, now: float) -> bool:
        """Returns True if the packet may proceed, False if it must drop.

        Under TAG policy nonconforming packets proceed but are marked.
        """
        if self.bucket.try_consume(packet.size_bits, now):
            self.conforming += 1
            return True
        self.nonconforming += 1
        if self.policy is NonconformingPolicy.TAG:
            packet.tagged = True
            return True
        return False

    @property
    def drop_fraction(self) -> float:
        total = self.conforming + self.nonconforming
        return self.nonconforming / total if total else 0.0


def minimal_bucket_depth(
    arrivals: Iterable[Tuple[float, float]], rate_bps: float
) -> float:
    """b(r): the minimal bucket depth at which ``arrivals`` conform.

    Args:
        arrivals: (time, size_bits) pairs in non-decreasing time order.
        rate_bps: the candidate token rate r.

    Returns:
        The smallest b such that the sequence conforms to (r, b), computed
        by simulating an infinitely deep bucket that starts empty of
        *deficit*: b(r) = max over i of (bits sent in any window ending at
        t_i) - r * (window length).  Equivalently the peak of the leaky-
        bucket backlog when drained at r, plus the size of the packet that
        created the peak.
    """
    if rate_bps <= 0:
        raise ValueError("rate must be positive")
    # Deficit-based formulation: run the recurrence with unbounded depth
    # starting from zero credit; the required depth is the worst cumulative
    # overdraft: b = max_i ( sum_{j<=i} p_j - r*(t_i - t_0) ) over suffixes.
    # Standard O(n) computation: track credit = tokens relative to an
    # initially full bucket of unknown depth.
    depth_needed = 0.0
    credit = 0.0  # tokens consumed beyond refill so far (>= 0 means need)
    last_t: Optional[float] = None
    for t, size in arrivals:
        if size < 0:
            raise ValueError("packet size cannot be negative")
        if last_t is not None:
            if t < last_t:
                raise ValueError("arrivals must be time-ordered")
            credit = max(0.0, credit - (t - last_t) * rate_bps)
        last_t = t
        credit += size
        depth_needed = max(depth_needed, credit)
    return depth_needed


def conforms(
    arrivals: List[Tuple[float, float]], rate_bps: float, depth_bits: float
) -> bool:
    """True if the arrival sequence conforms to an (r, b) bucket started full."""
    return minimal_bucket_depth(arrivals, rate_bps) <= depth_bits + 1e-9
