"""Trace-driven source.

Replays an explicit (time, size) schedule.  Tests use it to construct
adversarial arrival patterns (greedy token-bucket bursts for the
Parekh-Gallager bound tightness checks) and it doubles as the hook for
replaying real application traces — optionally cyclically, for driving a
long simulation from a short recorded profile.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.net.node import Host
from repro.net.packet import ServiceClass
from repro.sim.engine import Simulator
from repro.traffic.source import PacketSource
from repro.traffic.token_bucket import TokenBucketFilter


class TraceSource(PacketSource):
    """Emits packets at the absolute times given in ``schedule``.

    Args:
        schedule: (time_seconds, size_bits) pairs; need not be sorted.
            Entries before the current simulation time are rejected.
        repeat_every: if set, the whole schedule replays shifted by this
            period, indefinitely (until :meth:`stop`).  Must exceed the
            trace's span so cycles do not overlap out of order.
    """

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        destination: str,
        schedule: Sequence[Tuple[float, int]],
        service_class: ServiceClass = ServiceClass.DATAGRAM,
        priority_class: int = 0,
        source_filter: Optional[TokenBucketFilter] = None,
        repeat_every: Optional[float] = None,
    ):
        super().__init__(
            sim,
            host,
            flow_id,
            destination,
            packet_size_bits=1000,  # per-packet size comes from the schedule
            service_class=service_class,
            priority_class=priority_class,
            source_filter=source_filter,
        )
        self.schedule: List[Tuple[float, int]] = sorted(schedule)
        if not self.schedule:
            raise ValueError("trace schedule cannot be empty")
        for time, size in self.schedule:
            if time < sim.now:
                raise ValueError(f"trace entry at {time} is in the past")
            if size <= 0:
                raise ValueError("trace packet sizes must be positive")
        if repeat_every is not None:
            span = self.schedule[-1][0] - self.schedule[0][0]
            if repeat_every <= span:
                raise ValueError(
                    f"repeat period {repeat_every} must exceed the trace "
                    f"span {span}"
                )
        self.repeat_every = repeat_every
        self.cycles_started = 0
        self._schedule_cycle(offset=0.0)

    def _schedule_cycle(self, offset: float) -> None:
        if self.stopped:
            return
        self.cycles_started += 1
        for time, size in self.schedule:
            self.sim.schedule_at(
                time + offset, lambda s=size: self._emit_sized(s)
            )
        if self.repeat_every is not None:
            next_offset = offset + self.repeat_every
            # Re-arm just after this cycle's last emission, well before the
            # next cycle's first one.
            self.sim.schedule_at(
                self.schedule[-1][0] + offset,
                lambda: self._schedule_cycle(next_offset),
            )

    def _emit_sized(self, size_bits: int) -> None:
        if self.stopped:
            return
        self.packet_size_bits = size_bits
        self.emit()
