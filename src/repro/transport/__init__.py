"""Datagram transport substrate.

Table 3's workload includes "2 datagram TCP connections" riding the lowest
priority class of the unified scheduler.  This subpackage provides a
simplified window-based TCP (slow start, congestion avoidance, fast
retransmit, RTO with Karn/Jacobson timing) sufficient to generate adaptive
best-effort load that fills whatever capacity the real-time classes leave,
plus a fire-and-forget UDP-style sender.
"""

from repro.transport.tcp import TcpConnection, TcpConfig, TcpSenderState
from repro.transport.udp import UdpSender

__all__ = ["TcpConnection", "TcpConfig", "TcpSenderState", "UdpSender"]
