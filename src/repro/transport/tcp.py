"""A simplified TCP for datagram background load.

Implements the congestion-control core a 1992-era TCP (Tahoe/Reno lineage)
would bring to the paper's experiment:

* slow start and congestion avoidance over a packet-counted cwnd,
* Jacobson/Karels RTT estimation (SRTT + RTTVAR) with Karn's rule
  (no samples from retransmitted segments),
* triple-duplicate-ACK fast retransmit with multiplicative decrease,
* retransmission timeout with exponential backoff and cwnd reset to 1.

The sender is greedy (infinite backlog): it models a bulk transfer soaking
up whatever bandwidth the real-time classes leave over, which is the role
the two TCP connections play in Table 3.  Segments and ACKs are ordinary
:class:`~repro.net.packet.Packet` objects with a small payload dict, so
they traverse the exact same switches, schedulers, and drop paths as the
real-time traffic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Set

from repro.net.node import Host
from repro.net.packet import Packet, ServiceClass
from repro.sim.engine import Simulator
from repro.sim.events import EventHandle


@dataclasses.dataclass(frozen=True)
class TcpConfig:
    """Tuning of one connection.

    Attributes:
        segment_bits: data segment size (the paper's 1000-bit packets).
        ack_bits: ACK size; defaults to a full packet so that "all packets
            are 1000 bits" holds on the reverse path too.
        initial_cwnd: initial congestion window (packets).
        initial_ssthresh: initial slow-start threshold (packets).
        min_rto / max_rto: clamp on the retransmission timeout (seconds).
        max_cwnd: cap on the window (packets), standing in for the
            receiver's advertised window.
        dupack_threshold: duplicate ACKs that trigger fast retransmit.
    """

    segment_bits: int = 1000
    ack_bits: int = 1000
    initial_cwnd: float = 1.0
    initial_ssthresh: float = 64.0
    min_rto: float = 0.2
    max_rto: float = 60.0
    max_cwnd: float = 128.0
    dupack_threshold: int = 3

    def __post_init__(self):
        if self.segment_bits <= 0 or self.ack_bits <= 0:
            raise ValueError("segment and ack sizes must be positive")
        if self.initial_cwnd < 1:
            raise ValueError("initial cwnd must be at least 1")
        if self.min_rto <= 0 or self.max_rto < self.min_rto:
            raise ValueError("bad RTO clamp")
        if self.dupack_threshold < 1:
            raise ValueError("dupack threshold must be >= 1")


@dataclasses.dataclass
class TcpSenderState:
    """Observable sender state (tests and benches read this)."""

    cwnd: float
    ssthresh: float
    next_seq: int
    highest_ack: int
    srtt: Optional[float]
    rto: float
    retransmits: int
    timeouts: int
    fast_retransmits: int


class TcpConnection:
    """One simplified TCP connection between two hosts.

    Args:
        flow_id: data-direction flow id; ACKs use ``flow_id + ":ack"``.
        priority_class: carried in each packet; the unified scheduler files
            DATAGRAM packets below all predicted classes regardless.
    """

    def __init__(
        self,
        sim: Simulator,
        sender_host: Host,
        receiver_host: Host,
        flow_id: str,
        config: Optional[TcpConfig] = None,
        priority_class: int = 0,
        start_time: float = 0.0,
    ):
        self.sim = sim
        self.sender_host = sender_host
        self.receiver_host = receiver_host
        self.flow_id = flow_id
        self.ack_flow_id = flow_id + ":ack"
        self.config = config or TcpConfig()
        self.priority_class = priority_class

        # --- sender state ---
        self.cwnd = float(self.config.initial_cwnd)
        self.ssthresh = float(self.config.initial_ssthresh)
        self.next_seq = 0
        self.highest_ack = 0  # next byte... next *segment* expected by peer
        self.dupacks = 0
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self.rto = 1.0
        self._rto_handle: Optional[EventHandle] = None
        self._send_times: Dict[int, float] = {}  # seq -> first-send time (Karn)
        # NewReno-style recovery point: while highest_ack < _recover, each
        # partial ACK retransmits the next hole instead of waiting out an
        # RTO per lost segment (multiple losses per window are the norm
        # with small switch buffers).
        self._recover = 0
        self.retransmits = 0
        self.timeouts = 0
        self.fast_retransmits = 0
        self.segments_sent = 0
        self._running = False

        # --- receiver state ---
        self.recv_next = 0
        self._ooo: Set[int] = set()
        self.segments_delivered = 0
        self.acks_sent = 0
        self.delivered_bits = 0

        receiver_host.register_flow_handler(flow_id, self._on_data)
        sender_host.register_flow_handler(self.ack_flow_id, self._on_ack)
        sim.schedule(start_time, self.start)

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._fill_window()

    def stop(self) -> None:
        self._running = False
        self._cancel_rto()

    @property
    def outstanding(self) -> int:
        return self.next_seq - self.highest_ack

    def _fill_window(self) -> None:
        while self._running and self.outstanding < int(min(self.cwnd, self.config.max_cwnd)):
            self._send_segment(self.next_seq, first_transmission=True)
            self.next_seq += 1

    def _send_segment(self, seq: int, first_transmission: bool) -> None:
        packet = Packet(
            flow_id=self.flow_id,
            size_bits=self.config.segment_bits,
            created_at=self.sim.now,
            source=self.sender_host.name,
            destination=self.receiver_host.name,
            service_class=ServiceClass.DATAGRAM,
            priority_class=self.priority_class,
            sequence=seq,
            payload={"type": "data", "seq": seq},
        )
        if first_transmission:
            self._send_times[seq] = self.sim.now
        else:
            # Karn's rule: a retransmitted segment gives no RTT sample.
            self._send_times.pop(seq, None)
            self.retransmits += 1
        self.segments_sent += 1
        self.sender_host.send(packet)
        if self._rto_handle is None or not self._rto_handle.active:
            self._arm_rto()

    def _arm_rto(self) -> None:
        self._cancel_rto()
        self._rto_handle = self.sim.schedule_handle(self.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_handle is not None:
            self._rto_handle.cancel()
            self._rto_handle = None

    def _on_rto(self) -> None:
        if not self._running or self.outstanding == 0:
            return
        # Timeout: multiplicative decrease to the floor, back off the timer.
        self.timeouts += 1
        self.ssthresh = max(self.outstanding / 2.0, 2.0)
        self.cwnd = 1.0
        self.dupacks = 0
        self.rto = min(self.rto * 2.0, self.config.max_rto)
        self._recover = self.next_seq
        self._send_segment(self.highest_ack, first_transmission=False)
        self._arm_rto()

    def _on_ack(self, packet: Packet) -> None:
        assert packet.payload is not None and packet.payload["type"] == "ack"
        ack = packet.payload["ack"]  # cumulative: next segment expected
        if ack > self.highest_ack:
            newly_acked = ack - self.highest_ack
            self._update_rtt(ack)
            self.highest_ack = ack
            self.dupacks = 0
            if self.cwnd < self.ssthresh:
                self.cwnd = min(self.cwnd + newly_acked, self.config.max_cwnd)
            else:
                self.cwnd = min(
                    self.cwnd + newly_acked / self.cwnd, self.config.max_cwnd
                )
            if self.outstanding > 0:
                self._arm_rto()
            else:
                self._cancel_rto()
            if ack < self._recover and self.outstanding > 0:
                # Partial ACK: the cumulative ACK stopped at the next hole;
                # retransmit it immediately (NewReno fast recovery /
                # go-back-N after a timeout).
                self._send_segment(self.highest_ack, first_transmission=False)
                self._arm_rto()
            self._fill_window()
        elif ack == self.highest_ack and self.outstanding > 0:
            self.dupacks += 1
            if self.dupacks == self.config.dupack_threshold:
                # Fast retransmit + multiplicative decrease (simplified
                # Reno: no window inflation during recovery).
                self.fast_retransmits += 1
                self.ssthresh = max(self.outstanding / 2.0, 2.0)
                self.cwnd = self.ssthresh
                self._recover = self.next_seq
                self._send_segment(self.highest_ack, first_transmission=False)
                self._arm_rto()

    def _update_rtt(self, ack: int) -> None:
        """Jacobson/Karels estimator from the newest timed segment covered
        by this cumulative ACK."""
        sample = None
        for seq in range(self.highest_ack, ack):
            sent_at = self._send_times.pop(seq, None)
            if sent_at is not None:
                sample = self.sim.now - sent_at
        if sample is None:
            return
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            assert self.rttvar is not None
            self.rttvar = 0.75 * self.rttvar + 0.25 * abs(self.srtt - sample)
            self.srtt = 0.875 * self.srtt + 0.125 * sample
        self.rto = min(
            max(self.srtt + 4.0 * (self.rttvar or 0.0), self.config.min_rto),
            self.config.max_rto,
        )

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------
    def _on_data(self, packet: Packet) -> None:
        assert packet.payload is not None and packet.payload["type"] == "data"
        seq = packet.payload["seq"]
        if seq == self.recv_next:
            self.recv_next += 1
            self.segments_delivered += 1
            self.delivered_bits += self.config.segment_bits
            while self.recv_next in self._ooo:
                self._ooo.discard(self.recv_next)
                self.recv_next += 1
                self.segments_delivered += 1
                self.delivered_bits += self.config.segment_bits
        elif seq > self.recv_next:
            self._ooo.add(seq)
        # else: duplicate of already-delivered data; just re-ACK.
        self._send_ack()

    def _send_ack(self) -> None:
        ack = Packet(
            flow_id=self.ack_flow_id,
            size_bits=self.config.ack_bits,
            created_at=self.sim.now,
            source=self.receiver_host.name,
            destination=self.sender_host.name,
            service_class=ServiceClass.DATAGRAM,
            priority_class=self.priority_class,
            payload={"type": "ack", "ack": self.recv_next},
        )
        self.acks_sent += 1
        self.receiver_host.send(ack)

    # ------------------------------------------------------------------
    def sender_state(self) -> TcpSenderState:
        return TcpSenderState(
            cwnd=self.cwnd,
            ssthresh=self.ssthresh,
            next_seq=self.next_seq,
            highest_ack=self.highest_ack,
            srtt=self.srtt,
            rto=self.rto,
            retransmits=self.retransmits,
            timeouts=self.timeouts,
            fast_retransmits=self.fast_retransmits,
        )

    def goodput_bps(self, elapsed: float) -> float:
        """Delivered (unique) bits per second over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.delivered_bits / elapsed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<TcpConnection {self.flow_id} cwnd={self.cwnd:.1f} "
            f"acked={self.highest_ack} rtx={self.retransmits}>"
        )
