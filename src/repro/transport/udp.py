"""Fire-and-forget datagram sender.

A thin convenience over :class:`~repro.traffic.source.PacketSource`-style
emission for tests and examples that need raw best-effort packets without
congestion control.
"""

from __future__ import annotations

from typing import Optional

from repro.net.node import Host
from repro.net.packet import Packet, ServiceClass
from repro.sim.engine import Simulator


class UdpSender:
    """Sends individual datagram packets on demand."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow_id: str,
        destination: str,
        packet_size_bits: int = 1000,
    ):
        if packet_size_bits <= 0:
            raise ValueError("packet size must be positive")
        self.sim = sim
        self.host = host
        self.flow_id = flow_id
        self.destination = destination
        self.packet_size_bits = packet_size_bits
        self.sent = 0
        self._next_seq = 0

    def send(self, payload: Optional[dict] = None, size_bits: Optional[int] = None) -> Packet:
        packet = Packet(
            flow_id=self.flow_id,
            size_bits=size_bits or self.packet_size_bits,
            created_at=self.sim.now,
            source=self.host.name,
            destination=self.destination,
            service_class=ServiceClass.DATAGRAM,
            sequence=self._next_seq,
            payload=payload,
        )
        self._next_seq += 1
        self.sent += 1
        self.host.send(packet)
        return packet

    def send_burst(self, count: int) -> None:
        """Emit ``count`` packets back-to-back (burst/drop tests)."""
        for __ in range(count):
            self.send()
