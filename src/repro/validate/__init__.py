"""Simulation-invariant validation: audit taps + post-run checks.

Any scenario can opt in (``ScenarioSpec(validate=True)``, the builder's
``.validate()``, or ``--validate`` on the CLI); generated scenarios
(:mod:`repro.scenario.generators`) opt in by default.  The layer has two
halves:

* :mod:`repro.validate.audit` — :class:`SimulationAudit`, a lightweight
  tap on every output port's listener seam (plus the link layer's wire
  counters).  It maintains O(ports × flows) counters and a
  buffer-bounded pending-packet window per (port, flow); it never
  schedules events or consumes random draws, so an audited run is
  bit-identical to an unaudited one.
* :mod:`repro.validate.invariants` — :func:`check_invariants`, executed
  post-run over the audit state, the live network, and the spec.  The
  checks: per-port and per-flow packet conservation, within-flow FIFO
  ordering on every link whose scheduler guarantees it, WFQ/P-G
  guaranteed-delay-bound compliance, buffer bounds, non-negative waits,
  and clock monotonicity.

Results travel as :class:`InvariantCheck` tuples on
:class:`~repro.scenario.runner.DisciplineRunResult`, so sweeps fan
validated runs across workers like any others.
"""

from repro.validate.audit import SimulationAudit
from repro.validate.invariants import (
    InvariantCheck,
    InvariantViolation,
    assert_clean,
    check_invariants,
    guaranteed_delay_bound,
    invariants_summary,
)

__all__ = [
    "InvariantCheck",
    "InvariantViolation",
    "SimulationAudit",
    "assert_clean",
    "check_invariants",
    "guaranteed_delay_bound",
    "invariants_summary",
]
