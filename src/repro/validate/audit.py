"""Run-time audit tap for invariant validation.

:class:`SimulationAudit` attaches to every output port of a live network
through the port layer's listener seam (``on_enqueue`` / ``on_depart`` /
``on_drop``) and maintains the bookkeeping the post-run invariant checks
need:

* per (port, flow) counters: packets enqueued, departed, dropped on
  arrival, dropped by push-out after having been queued;
* a pending-packet-id window per (port, flow) — bounded by the port's
  buffer size — used to detect within-flow reordering, duplicated
  departures, and to classify drops;
* clock-monotonicity and buffer-bound observations on every event.

The tap is observation-only: it never schedules events, never consumes
random draws, and never touches packet state, so audited runs are
bit-identical to unaudited ones.  Violations detected *during* the run
are recorded (capped, with full counts) and surfaced by
:func:`repro.validate.invariants.check_invariants`.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, Tuple

from repro.net.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.net.network import Network
    from repro.net.port import OutputPort
    from repro.sim.engine import Simulator

#: How many violation descriptions are kept verbatim; counts are exact
#: regardless (a pathological run must not hoard memory describing it).
MAX_VIOLATION_DETAILS = 25


class PortAudit:
    """Counters and the pending-packet window of one output port."""

    __slots__ = (
        "port",
        "preserves_flow_fifo",
        "enqueued",
        "departed",
        "arrival_dropped",
        "victim_dropped",
        "pending",
        "reordered",
        "events",
    )

    def __init__(self, port: "OutputPort"):
        self.port = port
        self.preserves_flow_fifo = getattr(
            port.scheduler, "preserves_flow_fifo", True
        )
        self.enqueued: Dict[str, int] = {}
        self.departed: Dict[str, int] = {}
        self.arrival_dropped: Dict[str, int] = {}
        self.victim_dropped: Dict[str, int] = {}
        self.pending: Dict[str, Deque[int]] = {}
        self.reordered = 0
        self.events = 0

    def arrivals(self, flow_id: str) -> int:
        """Packets of ``flow_id`` offered to this port (queued or not)."""
        return self.enqueued.get(flow_id, 0) + self.arrival_dropped.get(
            flow_id, 0
        )

    def queued(self, flow_id: str) -> int:
        """Packets of ``flow_id`` still waiting in this port's scheduler."""
        return len(self.pending.get(flow_id, ()))


class SimulationAudit:
    """The network-wide tap: one :class:`PortAudit` per output port.

    Args:
        sim: the simulator (clock-monotonicity reference).
        net: the live network whose ports are tapped.

    ``delivered`` counts host deliveries per flow for flows without a
    recording sink — the scenario runner registers
    :meth:`delivery_counter` as the flow handler instead of a no-op when
    an audit is active, so per-flow conservation closes for background
    (``record=False``) flows too.
    """

    def __init__(self, sim: "Simulator", net: "Network"):
        self.sim = sim
        self.net = net
        self.ports: Dict[str, PortAudit] = {}
        self.delivered: Dict[str, int] = {}
        self.violations: List[str] = []
        self.violation_count = 0
        self.fifo_violations = 0
        self.clock_violations = 0
        self.buffer_violations = 0
        self.negative_wait_violations = 0
        # Route-liveness: packets enqueued to, or departing onto, a link
        # that is down (the control plane must never forward onto a dead
        # wire).  Eligibility: packets departing a Stop-and-Go port
        # before the frame eligibility recomputed from their arrival time
        # (non-work-conserving holds must never be cut short).
        self.liveness_violations = 0
        self.eligibility_violations = 0
        self.events_observed = 0
        self._last_now = sim.now
        for name, port in net.ports.items():
            self._attach(name, port)

    # ------------------------------------------------------------------
    def _record(self, kind: str, message: str) -> None:
        self.violation_count += 1
        if len(self.violations) < MAX_VIOLATION_DETAILS:
            self.violations.append(f"{kind}: {message}")

    def _observe_clock(self, now: float, where: str) -> None:
        self.events_observed += 1
        if now < self._last_now:
            self.clock_violations += 1
            self._record(
                "clock",
                f"time ran backwards at {where}: {now} < {self._last_now}",
            )
        else:
            self._last_now = now

    # ------------------------------------------------------------------
    def _attach(self, name: str, port: "OutputPort") -> None:
        audit = PortAudit(port)
        self.ports[name] = audit
        link = port.link
        # Stop-and-Go publishes a pure arrival→eligibility function; when
        # present, recompute the hold independently on every departure.
        eligible_time = getattr(port.scheduler, "eligible_time", None)

        def on_enqueue(packet: Packet, now: float) -> None:
            self._observe_clock(now, name)
            flow = packet.flow_id
            audit.events += 1
            audit.enqueued[flow] = audit.enqueued.get(flow, 0) + 1
            pending = audit.pending.get(flow)
            if pending is None:
                pending = audit.pending[flow] = deque()
            pending.append(packet.packet_id)
            if port.queue_length > port.buffer_packets:
                self.buffer_violations += 1
                self._record(
                    "buffer",
                    f"{name} holds {port.queue_length} packets "
                    f"(buffer {port.buffer_packets})",
                )

        def on_depart(packet: Packet, now: float, wait: float) -> None:
            self._observe_clock(now, name)
            flow = packet.flow_id
            audit.events += 1
            audit.departed[flow] = audit.departed.get(flow, 0) + 1
            if not link.up:
                self.liveness_violations += 1
                self._record(
                    "route-liveness",
                    f"{name} forwarded {flow} #{packet.packet_id} onto a "
                    "down link",
                )
            if (
                eligible_time is not None
                and now + 1e-12 < eligible_time(packet.enqueued_at)
            ):
                self.eligibility_violations += 1
                self._record(
                    "eligibility",
                    f"{name} served {flow} #{packet.packet_id} at {now} "
                    f"before eligibility "
                    f"{eligible_time(packet.enqueued_at)}",
                )
            if wait < 0:
                self.negative_wait_violations += 1
                self._record(
                    "negative-wait",
                    f"{name} served {flow} #{packet.packet_id} with "
                    f"wait {wait}",
                )
            pending = audit.pending.get(flow)
            if not pending:
                self.fifo_violations += 1
                self._record(
                    "teleport",
                    f"{name} served {flow} #{packet.packet_id} that was "
                    "never enqueued",
                )
                return
            if pending[0] == packet.packet_id:
                pending.popleft()
                return
            # Out of arrival order within the flow.  A scheduler that
            # guarantees within-flow FIFO makes this a violation; FIFO+
            # style disciplines make it a (counted) observation.
            try:
                pending.remove(packet.packet_id)
            except ValueError:
                self.fifo_violations += 1
                self._record(
                    "teleport",
                    f"{name} served {flow} #{packet.packet_id} that was "
                    "never enqueued",
                )
                return
            audit.reordered += 1
            if audit.preserves_flow_fifo:
                self.fifo_violations += 1
                self._record(
                    "flow-fifo",
                    f"{name} ({type(port.scheduler).__name__}) served "
                    f"{flow} #{packet.packet_id} ahead of an earlier "
                    "packet of the same flow",
                )

        def on_drop(packet: Packet, now: float) -> None:
            self._observe_clock(now, name)
            flow = packet.flow_id
            audit.events += 1
            pending = audit.pending.get(flow)
            if pending and packet.packet_id in pending:
                # A push-out victim: it had been queued, so it stays in
                # the enqueued count and leaves through victim_dropped.
                pending.remove(packet.packet_id)
                audit.victim_dropped[flow] = (
                    audit.victim_dropped.get(flow, 0) + 1
                )
            else:
                audit.arrival_dropped[flow] = (
                    audit.arrival_dropped.get(flow, 0) + 1
                )

        port.on_enqueue.append(on_enqueue)
        port.on_depart.append(on_depart)
        port.on_drop.append(on_drop)

    # ------------------------------------------------------------------
    def delivery_counter(self, flow_id: str):
        """A flow handler counting host deliveries (``record=False`` flows)."""
        self.delivered[flow_id] = 0

        def handler(packet: Packet) -> None:
            self.delivered[flow_id] += 1

        return handler

    # ------------------------------------------------------------------
    def reordered_total(self) -> int:
        """Within-flow reorders observed network-wide (all ports)."""
        return sum(audit.reordered for audit in self.ports.values())

    def fifo_ports(self) -> Tuple[str, ...]:
        """Ports whose scheduler guarantees within-flow FIFO order."""
        return tuple(
            name
            for name, audit in sorted(self.ports.items())
            if audit.preserves_flow_fifo
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<SimulationAudit ports={len(self.ports)} "
            f"events={self.events_observed} "
            f"violations={self.violation_count}>"
        )
