"""Post-run invariant checks over an audited simulation.

:func:`check_invariants` runs after a validated scenario's simulation
finishes and examines the audit counters, the live network, and the
spec.  Every check yields an :class:`InvariantCheck` — serializable and
picklable, so validated runs travel through sweep workers like any
others.

The invariants:

* ``port-conservation`` — at every output port, packets in equal packets
  out + dropped + still queued, and the per-(port, flow) books close
  exactly (enqueued = departed + pushed out + pending).
* ``flow-conservation`` — along every flow's path, each hop's departures
  match the next hop's arrivals up to the packets physically on the wire
  (transmitting or propagating), the first hop's arrivals equal the
  source's emissions, and the last hop's departures reach the
  destination.  Nothing vanishes, nothing duplicates, per flow.
* ``flow-fifo`` — on every port whose scheduler guarantees within-flow
  FIFO (``Scheduler.preserves_flow_fifo``), packets of one flow depart
  in arrival order.  FIFO+-style ports are observed (reorder counts in
  the detail) but not asserted — their expected-arrival key preserves
  within-flow order only statistically.
* ``guaranteed-delay-bound`` — every guaranteed flow served by
  rate-capable disciplines along its whole path stays below its
  Parekh-Gallager packetized delay bound
  (:func:`repro.core.bounds.parekh_gallager_packet_bound`).
* ``queue-bounds`` — queue occupancy never exceeds the port buffer and
  no packet is served with a negative wait.
* ``clock-monotonic`` — observed event times never run backwards.
* ``route-liveness`` — no packet ever departs a port onto a link that is
  down (the control plane must reconverge before traffic flows again).
* ``eligibility-time`` — non-work-conserving disciplines never release a
  packet before its eligibility: the audit independently recomputes
  Stop-and-Go frame eligibility per departure, and every held-packet
  scheduler self-reports early departures through its
  ``early_departures`` counter.

When the control plane is active (``context.controller`` set) flow paths
change mid-run, so ``flow-conservation`` switches from the static
hop-by-hop walk to a global per-flow ledger: emissions equal deliveries
plus drops anywhere (arrival, push-out, wire-killed on failed links,
no-route at switches) plus packets still queued, within the slack of
packets physically on some wire.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.core.bounds import parekh_gallager_packet_bound
from repro.scenario.spec import FlowSpec, GuaranteedRequest
from repro.scenario.disciplines import resolve_port_discipline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.scenario.runner import ScenarioContext
    from repro.validate.audit import SimulationAudit

#: Discipline kinds whose schedulers honour installed guaranteed clock
#: rates, making the P-G bound a checkable commitment on their ports.
RATE_CAPABLE_KINDS = ("wfq", "virtual_clock", "unified")

#: Float-comparison slack for the delay-bound check (the bound itself is
#: conservative; this only absorbs accumulation error).
BOUND_EPSILON = 1e-9


class InvariantViolation(AssertionError):
    """One or more simulation invariants failed (see the message)."""


@dataclasses.dataclass(frozen=True)
class InvariantCheck:
    """Outcome of one invariant over one discipline's simulation.

    Attributes:
        name: invariant identifier (``port-conservation``, ...).
        ok: whether the invariant held everywhere it applies.
        checked: units examined (ports, flows, events — per the check).
        violations: number of violations detected.
        detail: human-readable elaboration (first violations, skip
            reasons, informational counts).
    """

    name: str
    ok: bool
    checked: int
    violations: int = 0
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data) -> "InvariantCheck":
        return cls(**dict(data))


def assert_clean(checks: Tuple[InvariantCheck, ...]) -> None:
    """Raise :class:`InvariantViolation` if any check failed."""
    failed = [check for check in checks if not check.ok]
    if failed:
        raise InvariantViolation(
            "; ".join(
                f"{check.name}: {check.violations} violation(s)"
                f"{' — ' + check.detail if check.detail else ''}"
                for check in failed
            )
        )


def invariants_summary(checks: Tuple[InvariantCheck, ...]) -> str:
    """One-line ``name=ok`` summary (CLI reporting)."""
    return "  ".join(
        f"{check.name}={'ok' if check.ok else 'FAIL'}" for check in checks
    )


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------


def _detail(messages: List[str], limit: int = 3) -> str:
    if not messages:
        return ""
    shown = "; ".join(messages[:limit])
    more = len(messages) - limit
    return shown + (f"; (+{more} more)" if more > 0 else "")


def _check_port_conservation(context: "ScenarioContext") -> InvariantCheck:
    audit = context.audit
    problems: List[str] = []
    checked = 0
    for name, port in context.net.ports.items():
        checked += 1
        expected = port.packets_out + port.packets_dropped + port.queue_length
        if port.packets_in != expected:
            problems.append(
                f"{name}: in={port.packets_in} != out={port.packets_out}"
                f"+dropped={port.packets_dropped}+queued={port.queue_length}"
            )
        port_audit = audit.ports[name]
        for flow, enqueued in port_audit.enqueued.items():
            departed = port_audit.departed.get(flow, 0)
            victims = port_audit.victim_dropped.get(flow, 0)
            pending = port_audit.queued(flow)
            if enqueued != departed + victims + pending:
                problems.append(
                    f"{name}/{flow}: enqueued={enqueued} != "
                    f"departed={departed}+pushed_out={victims}"
                    f"+pending={pending}"
                )
    return InvariantCheck(
        name="port-conservation",
        ok=not problems,
        checked=checked,
        violations=len(problems),
        detail=_detail(problems),
    )


def _wire_capacity(link) -> int:
    """Packets that may legitimately sit on one wire right now."""
    return (1 if link.busy else 0) + link.in_transit


def _check_flow_conservation_rerouted(
    context: "ScenarioContext",
) -> InvariantCheck:
    """The reroute-aware per-flow ledger (control plane active).

    A flow's path is no longer a constant, so instead of matching hop
    departures to next-hop arrivals we close a global balance per flow:

        sent = delivered + dropped(any port) + pending(any port)
               + wire-killed(any link) + no-route(any switch) + on-wire

    where the on-wire remainder is bounded by the total number of
    packets a wire may legitimately hold right now, summed over all
    links (it is not per-flow attributable without per-packet wire
    tracking, which the observation-only tap does not do).
    """
    audit = context.audit
    net = context.net
    problems: List[str] = []
    checked = 0
    slack = sum(_wire_capacity(link) for link in net.links.values())
    wire_killed: Dict[str, int] = {}
    for link in net.links.values():
        for flow_id, count in link.failure_drops.items():
            wire_killed[flow_id] = wire_killed.get(flow_id, 0) + count
    no_route: Dict[str, int] = {}
    for switch in net.switches.values():
        for flow_id, count in switch.no_route_drops.items():
            no_route[flow_id] = no_route.get(flow_id, 0) + count
    for flow in context.spec.flows:
        source = context.sources.get(flow.name)
        if source is None:
            continue
        if flow.name in context.sinks:
            delivered = context.sinks[flow.name].received
        elif flow.name in audit.delivered:
            delivered = audit.delivered[flow.name]
        else:  # custom receiver installed by the caller; cannot count
            continue
        checked += 1
        name = flow.name
        dropped = 0
        pending = 0
        for port_audit in audit.ports.values():
            dropped += port_audit.arrival_dropped.get(name, 0)
            dropped += port_audit.victim_dropped.get(name, 0)
            pending += port_audit.queued(name)
        balance = (
            source.sent
            - delivered
            - dropped
            - pending
            - wire_killed.get(name, 0)
            - no_route.get(name, 0)
        )
        if not 0 <= balance <= slack:
            problems.append(
                f"{name}: sent={source.sent} minus delivered={delivered}"
                f"+dropped={dropped}+pending={pending}"
                f"+wire_killed={wire_killed.get(name, 0)}"
                f"+no_route={no_route.get(name, 0)} leaves {balance}, "
                f"wires hold at most {slack}"
            )
    return InvariantCheck(
        name="flow-conservation",
        ok=not problems,
        checked=checked,
        violations=len(problems),
        detail=_detail(problems),
    )


def _check_flow_conservation(context: "ScenarioContext") -> InvariantCheck:
    if getattr(context, "controller", None) is not None:
        return _check_flow_conservation_rerouted(context)
    audit = context.audit
    net = context.net
    problems: List[str] = []
    checked = 0
    for flow in context.spec.flows:
        source = context.sources.get(flow.name)
        if source is None:  # removed mid-run (orchestrated scenarios)
            continue
        checked += 1
        links = net.link_names_on_path(flow.source_host, flow.dest_host)
        if flow.name in context.sinks:
            delivered: Optional[int] = context.sinks[flow.name].received
        elif flow.name in audit.delivered:
            delivered = audit.delivered[flow.name]
        else:  # custom receiver installed by the caller; cannot count
            delivered = None
        if not links:
            if delivered is not None and delivered != source.sent:
                problems.append(
                    f"{flow.name}: sent={source.sent} but "
                    f"delivered={delivered} with no links on path"
                )
            continue
        first = audit.ports[links[0]]
        if first.arrivals(flow.name) != source.sent:
            problems.append(
                f"{flow.name}: source sent {source.sent} but {links[0]} "
                f"saw {first.arrivals(flow.name)} arrivals"
            )
        for here, there in zip(links, links[1:]):
            gap = audit.ports[here].departed.get(
                flow.name, 0
            ) - audit.ports[there].arrivals(flow.name)
            capacity = _wire_capacity(net.links[here])
            if not 0 <= gap <= capacity:
                problems.append(
                    f"{flow.name}: {here} departed minus {there} arrivals "
                    f"is {gap}, wire holds at most {capacity}"
                )
        if delivered is not None:
            last = links[-1]
            gap = audit.ports[last].departed.get(flow.name, 0) - delivered
            capacity = _wire_capacity(net.links[last])
            if not 0 <= gap <= capacity:
                problems.append(
                    f"{flow.name}: {last} departed minus {delivered} "
                    f"delivered is {gap}, wire holds at most {capacity}"
                )
    return InvariantCheck(
        name="flow-conservation",
        ok=not problems,
        checked=checked,
        violations=len(problems),
        detail=_detail(problems),
    )


def _check_flow_fifo(audit: "SimulationAudit") -> InvariantCheck:
    fifo_ports = audit.fifo_ports()
    observed = audit.reordered_total()
    statistical_ports = len(audit.ports) - len(fifo_ports)
    info = []
    if statistical_ports:
        info.append(
            f"{observed} reorder(s) observed on {statistical_ports} "
            "statistical-order (FIFO+-style) port(s)"
        )
    problems = [v for v in audit.violations if v.startswith(("flow-fifo", "teleport"))]
    return InvariantCheck(
        name="flow-fifo",
        ok=audit.fifo_violations == 0,
        checked=len(fifo_ports),
        violations=audit.fifo_violations,
        detail=_detail(problems) or "; ".join(info),
    )


def guaranteed_delay_bound(
    context: "ScenarioContext", flow: FlowSpec
) -> Optional[float]:
    """The P-G packetized bound of one guaranteed flow, if checkable.

    Returns ``None`` when the bound does not apply: the flow carries no
    guaranteed request, a port on its path runs a discipline without
    bit-rate reservations, the flow has no source-side token bucket to
    conform to, or its bucket rate exceeds its clock rate.
    """
    if not isinstance(flow.request, GuaranteedRequest):
        return None
    if flow.bucket_packets is None:
        return None
    clock_rate = flow.request.clock_rate_bps
    if flow.average_rate_pps * flow.packet_size_bits > clock_rate:
        return None
    links = context.net.link_names_on_path(flow.source_host, flow.dest_host)
    if not links:
        return None
    for name in links:
        if resolve_port_discipline(
            context.discipline, name
        ).kind not in RATE_CAPABLE_KINDS:
            return None
    return parekh_gallager_packet_bound(
        bucket_depth_bits=flow.bucket_packets * flow.packet_size_bits,
        clock_rate_bps=clock_rate,
        packet_size_bits=flow.packet_size_bits,
        link_rates_bps=[context.net.links[name].rate_bps for name in links],
    )


def _check_delay_bounds(context: "ScenarioContext") -> InvariantCheck:
    problems: List[str] = []
    checked = 0
    for flow in context.spec.flows:
        bound = guaranteed_delay_bound(context, flow)
        sink = context.sinks.get(flow.name)
        if bound is None or sink is None or not sink.recorded:
            continue
        checked += 1
        measured = sink.queueing.max
        if measured > bound + BOUND_EPSILON:
            problems.append(
                f"{flow.name}: max queueing delay {measured:.6f}s exceeds "
                f"P-G bound {bound:.6f}s"
            )
    return InvariantCheck(
        name="guaranteed-delay-bound",
        ok=not problems,
        checked=checked,
        violations=len(problems),
        detail=_detail(problems)
        or ("" if checked else "no eligible guaranteed flows"),
    )


def _check_queue_bounds(audit: "SimulationAudit") -> InvariantCheck:
    violations = audit.buffer_violations + audit.negative_wait_violations
    problems = [
        v
        for v in audit.violations
        if v.startswith(("buffer", "negative-wait"))
    ]
    return InvariantCheck(
        name="queue-bounds",
        ok=violations == 0,
        checked=audit.events_observed,
        violations=violations,
        detail=_detail(problems),
    )


def _check_route_liveness(audit: "SimulationAudit") -> InvariantCheck:
    problems = [v for v in audit.violations if v.startswith("route-liveness")]
    return InvariantCheck(
        name="route-liveness",
        ok=audit.liveness_violations == 0,
        checked=audit.events_observed,
        violations=audit.liveness_violations,
        detail=_detail(problems),
    )


def _check_eligibility(context: "ScenarioContext") -> InvariantCheck:
    audit = context.audit
    checked = 0
    violations = audit.eligibility_violations
    for port_audit in audit.ports.values():
        early = getattr(port_audit.port.scheduler, "early_departures", None)
        if early is None:
            continue  # work-conserving port: nothing is ever held
        checked += 1
        violations += early
    problems = [v for v in audit.violations if v.startswith("eligibility")]
    return InvariantCheck(
        name="eligibility-time",
        ok=violations == 0,
        checked=checked,
        violations=violations,
        detail=_detail(problems)
        or ("" if checked else "no non-work-conserving ports"),
    )


def _check_clock(audit: "SimulationAudit") -> InvariantCheck:
    problems = [v for v in audit.violations if v.startswith("clock")]
    return InvariantCheck(
        name="clock-monotonic",
        ok=audit.clock_violations == 0,
        checked=audit.events_observed,
        violations=audit.clock_violations,
        detail=_detail(problems),
    )


def check_invariants(context: "ScenarioContext") -> Tuple[InvariantCheck, ...]:
    """Run every invariant over one audited simulation.

    Requires the context to have been built with ``spec.validate`` on
    (i.e. ``context.audit`` is attached).
    """
    audit = context.audit
    if audit is None:
        raise ValueError(
            "scenario was not audited; build it with ScenarioSpec(validate=True)"
        )
    return (
        _check_port_conservation(context),
        _check_flow_conservation(context),
        _check_flow_fifo(audit),
        _check_delay_bounds(context),
        _check_queue_bounds(audit),
        _check_clock(audit),
        _check_route_liveness(audit),
        _check_eligibility(context),
    )
