"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.net.packet import Packet, ServiceClass
from repro.sim.engine import Simulator


def make_packet(
    flow_id: str = "f",
    size_bits: int = 1000,
    created_at: float = 0.0,
    source: str = "src",
    destination: str = "dst",
    service_class: ServiceClass = ServiceClass.DATAGRAM,
    priority_class: int = 0,
    sequence: int = 0,
    enqueued_at: float = 0.0,
) -> Packet:
    """Construct a packet with test-friendly defaults."""
    packet = Packet(
        flow_id=flow_id,
        size_bits=size_bits,
        created_at=created_at,
        source=source,
        destination=destination,
        service_class=service_class,
        priority_class=priority_class,
        sequence=sequence,
    )
    packet.enqueued_at = enqueued_at
    return packet


@pytest.fixture
def sim() -> Simulator:
    return Simulator()
