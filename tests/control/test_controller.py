"""LinkStateController over a live network: failure, flush, reroute.

These tests drive the controller directly against small hand-built
networks (FIFO ports, datagram traffic, no signaling) — the
admission-controlled re-establishment policies are covered at the
scenario layer in ``tests/validate/test_reroute_invariants.py``.
"""

import pytest

from repro.control import LinkStateController
from repro.net.network import Network
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from tests.conftest import make_packet


def diamond():
    """S-A->{S-B,S-D}->S-C with a host on each end; primary via S-B."""
    sim = Simulator()
    net = Network(sim, lambda name, link: FifoScheduler())
    for name in ("S-A", "S-B", "S-C", "S-D"):
        net.add_switch(name)
    for src, dst in (
        ("S-A", "S-B"), ("S-B", "S-C"), ("S-A", "S-D"), ("S-D", "S-C")
    ):
        net.add_link(src, dst, rate_bps=1_000_000)
    net.add_host("h-src", "S-A")
    net.add_host("h-dst", "S-C")
    return sim, net


def chain():
    """S-A->S-B over a single link: no alternate path exists."""
    sim = Simulator()
    net = Network(sim, lambda name, link: FifoScheduler())
    net.add_switch("S-A")
    net.add_switch("S-B")
    net.add_link("S-A", "S-B", rate_bps=1_000_000)
    net.add_host("h-src", "S-A")
    net.add_host("h-dst", "S-B")
    return sim, net


def pump(sim, net, count, flow_id="f", dest="h-dst", every=0.0005):
    """Schedule ``count`` sends from h-src, one every ``every`` seconds."""
    host = net.hosts["h-src"]
    for i in range(count):
        packet = make_packet(
            flow_id=flow_id, source="h-src", destination=dest, sequence=i
        )
        sim.schedule(i * every, lambda p=packet: host.send(p))


class TestFailureAccounting:
    def test_in_flight_packet_killed_and_ledgered(self):
        sim, net = diamond()
        controller = LinkStateController(net)
        link = net.links["S-A->S-B"]
        pump(sim, net, 1)
        sim.run(until=0.0005)  # mid-transmission (packet takes 1 ms)
        assert link.busy
        controller.fail_link("S-A->S-B")
        sim.run_until_idle()
        assert link.packets_failed == 1
        assert link.failure_drops == {"f": 1}
        assert net.hosts["h-dst"].packets_received == 0

    def test_queue_behind_dead_link_flushed_as_port_drops(self):
        sim, net = diamond()
        controller = LinkStateController(net)
        port = net.ports["S-A->S-B"]
        # 5 back-to-back packets: 1 transmitting, 4 queued behind it.
        pump(sim, net, 5, every=0.0)
        sim.run(until=0.0005)
        assert port.queue_length == 4
        controller.fail_link("S-A->S-B")
        assert controller.flushed_packets == 4
        assert port.queue_length == 0
        assert port.packets_dropped == 4
        # Port books still close: in = out + dropped + queued.
        assert port.packets_in == (
            port.packets_out + port.packets_dropped + port.queue_length
        )

    def test_fail_and_restore_are_idempotent(self):
        sim, net = diamond()
        controller = LinkStateController(net)
        controller.fail_link("S-A->S-B")
        controller.fail_link("S-A->S-B")
        assert controller.outages == 1
        controller.restore_link("S-A->S-B")
        controller.restore_link("S-A->S-B")
        assert controller.restores == 1
        assert controller.recomputes == 2

    def test_transmit_on_down_link_raises(self):
        sim, net = diamond()
        controller = LinkStateController(net)
        controller.fail_link("S-A->S-B")
        with pytest.raises(RuntimeError, match="down"):
            net.links["S-A->S-B"].transmit(make_packet())


class TestRerouting:
    def test_datagrams_follow_swapped_tables(self):
        sim, net = diamond()
        controller = LinkStateController(net)
        controller.track_flow("f", "h-src", "h-dst")
        controller.fail_link("S-A->S-B")
        pump(sim, net, 10)
        sim.run_until_idle()
        assert net.hosts["h-dst"].packets_received == 10
        assert net.ports["S-A->S-D"].packets_out == 10
        assert net.ports["S-A->S-B"].packets_in == 0
        [flow] = controller.summary().flows
        assert flow.reroutes == 1 and not flow.torn_down

    def test_restore_returns_exact_original_routes(self):
        sim, net = diamond()
        original = net.path("h-src", "h-dst")
        controller = LinkStateController(net)
        controller.fail_link("S-A->S-B")
        assert net.path("h-src", "h-dst") != original
        controller.restore_link("S-A->S-B")
        assert net.path("h-src", "h-dst") == original

    def test_back_to_back_flap_converges_home(self):
        """A fail+restore flap with no intervening traffic lands back on
        the original tables and counts one outage, one restore."""
        sim, net = diamond()
        original = net.path("h-src", "h-dst")
        controller = LinkStateController(net)
        controller.track_flow("f", "h-src", "h-dst")
        controller.fail_link("S-A->S-B")
        controller.restore_link("S-A->S-B")
        assert net.path("h-src", "h-dst") == original
        assert (controller.outages, controller.restores) == (1, 1)
        [flow] = controller.summary().flows
        assert flow.reroutes == 2  # out and back

    def test_outage_on_link_carrying_no_flows_disturbs_nothing(self):
        sim, net = diamond()
        controller = LinkStateController(net)
        controller.track_flow("f", "h-src", "h-dst")
        # The backup path's second hop: no flow routes over it.
        controller.fail_link("S-D->S-C")
        pump(sim, net, 10)
        sim.run_until_idle()
        assert net.hosts["h-dst"].packets_received == 10
        summary = controller.summary()
        assert summary.wire_killed == ()
        assert summary.flushed_packets == 0
        [flow] = summary.flows
        assert flow.reroutes == 0

    def test_partition_ledgers_no_route_drops(self):
        sim, net = chain()
        controller = LinkStateController(net)
        controller.track_flow("f", "h-src", "h-dst")
        controller.fail_link("S-A->S-B")
        pump(sim, net, 7)
        sim.run_until_idle()
        assert net.hosts["h-dst"].packets_received == 0
        assert net.switches["S-A"].no_route_drops == {"f": 7}
        summary = controller.summary()
        assert summary.no_route_drops == (("f", 7),)
        # Best-effort flow (no signaling): not torn down, just unroutable.
        [flow] = summary.flows
        assert not flow.torn_down

    def test_untracked_and_duplicate_flow_registry(self):
        sim, net = diamond()
        controller = LinkStateController(net)
        controller.track_flow("f", "h-src", "h-dst")
        with pytest.raises(ValueError):
            controller.track_flow("f", "h-src", "h-dst")
        controller.untrack_flow("f")
        controller.untrack_flow("ghost")  # no-op
        assert controller.summary().flows == ()

    def test_repr_names_down_links(self):
        sim, net = diamond()
        controller = LinkStateController(net)
        controller.fail_link("S-A->S-B")
        assert "S-A->S-B" in repr(controller)
