"""OutageProcess: explicit schedules, the sampled process, determinism."""

import pytest

from repro.control import (
    LinkStateController,
    OutageProcess,
    compute_outage_schedule,
)
from repro.net.network import Network
from repro.scenario.spec import OutageEvent, OutageSpec
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams


def ring_network(num_switches=5):
    """A duplex ring: every single-link failure leaves an alternate path."""
    sim = Simulator()
    net = Network(sim, lambda name, link: FifoScheduler())
    names = [f"S-{i}" for i in range(num_switches)]
    for name in names:
        net.add_switch(name)
    for here, there in zip(names, names[1:] + names[:1]):
        net.add_duplex_link(here, there)
    net.add_host("h-0", names[0])
    net.add_host("h-1", names[num_switches // 2])
    return sim, net


def outage_rng(seed=1):
    return RandomStreams(seed).stream("outage:process")


class TestExplicitEvents:
    def test_fail_and_repair_fire_on_schedule(self):
        sim, net = ring_network()
        controller = LinkStateController(net)
        spec = OutageSpec(
            events=(OutageEvent(link="S-0->S-1", at=1.0, duration=2.0),)
        )
        process = OutageProcess(sim, controller, spec)
        sim.run(until=1.5)
        assert controller.link_state["S-0->S-1"] is False
        assert not net.links["S-0->S-1"].up
        sim.run(until=3.5)
        assert controller.link_state["S-0->S-1"] is True
        assert net.links["S-0->S-1"].up
        assert process.outages_fired == 1
        assert (controller.outages, controller.restores) == (1, 1)

    def test_overlapping_windows_merge(self):
        """A second failure of an already-down link merges into the first
        outage; the earlier repair wins and the later one no-ops."""
        sim, net = ring_network()
        controller = LinkStateController(net)
        spec = OutageSpec(
            events=(
                OutageEvent(link="S-0->S-1", at=1.0, duration=2.0),
                OutageEvent(link="S-0->S-1", at=2.0, duration=5.0),
            )
        )
        OutageProcess(sim, controller, spec)
        sim.run_until_idle()
        assert controller.outages == 1
        assert controller.restores == 1
        assert controller.link_state["S-0->S-1"] is True


class TestSampledProcess:
    def _spec(self, **kwargs):
        defaults = dict(
            rate_per_second=0.5, mean_duration_seconds=0.5, start_after=0.0
        )
        defaults.update(kwargs)
        return OutageSpec(**defaults)

    def test_requires_rng(self):
        sim, net = ring_network()
        with pytest.raises(ValueError, match="rng"):
            OutageProcess(sim, LinkStateController(net), self._spec())

    def test_same_seed_same_schedule(self):
        histories = []
        for _ in range(2):
            sim, net = ring_network()
            controller = LinkStateController(net)
            events = []
            original = controller.fail_link

            def spy(name, _orig=original, _events=events, _sim=sim):
                _events.append((_sim.now, name))
                _orig(name)

            controller.fail_link = spy
            OutageProcess(sim, controller, self._spec(), outage_rng(seed=9))
            sim.run(until=60.0)
            histories.append(events)
        assert histories[0] == histories[1]
        assert len(histories[0]) > 3

    def test_different_seed_different_schedule(self):
        schedules = []
        for seed in (1, 2):
            sim, net = ring_network()
            controller = LinkStateController(net)
            process = OutageProcess(
                sim, controller, self._spec(), outage_rng(seed=seed)
            )
            sim.run(until=60.0)
            schedules.append((process.outages_fired, controller.outages))
        assert schedules[0] != schedules[1]

    def test_correlated_links_fail_together(self):
        sim, net = ring_network()
        controller = LinkStateController(net)
        spec = self._spec(correlated_links=3, max_outages=1)
        OutageProcess(sim, controller, spec, outage_rng())
        sim.run(until=120.0)
        assert controller.outages == 3  # one sampled event, three links
        assert controller.restores == 3  # repaired together

    def test_max_outages_stops_the_process(self):
        sim, net = ring_network()
        controller = LinkStateController(net)
        process = OutageProcess(
            sim, controller, self._spec(max_outages=2), outage_rng()
        )
        sim.run(until=600.0)
        assert process.outages_fired == 2
        assert controller.outages == 2

    def test_candidates_restrict_the_victim_pool(self):
        sim, net = ring_network()
        controller = LinkStateController(net)
        spec = self._spec(links=("S-0->S-1",), max_outages=4)
        OutageProcess(sim, controller, spec, outage_rng())
        sim.run(until=600.0)
        assert controller.outages >= 1
        # Only the named candidate ever failed.
        for name, link in net.links.items():
            if name != "S-0->S-1":
                assert link.up

    def test_stop_cancels_pending_timers(self):
        sim, net = ring_network()
        controller = LinkStateController(net)
        process = OutageProcess(
            sim, controller, self._spec(), outage_rng()
        )
        process.stop()
        sim.run(until=600.0)
        assert process.outages_fired == 0
        assert controller.outages == 0


class TestClockFreeReplay:
    """``compute_outage_schedule`` must replay exactly what an
    event-driven :class:`OutageProcess` applies — same draws, same
    order, same times — since the fluid engine compiles that schedule
    into epoch boundaries paired with packet runs."""

    HORIZON = 60.0

    def _recorded(self, spec, seed):
        sim, net = ring_network()
        controller = LinkStateController(net)
        events = []
        fail, restore = controller.fail_link, controller.restore_link

        def spy_fail(name):
            if controller.link_state.get(name, False):
                events.append((sim.now, name, False))
            fail(name)

        def spy_restore(name):
            if not controller.link_state.get(name, True):
                events.append((sim.now, name, True))
            restore(name)

        controller.fail_link = spy_fail
        controller.restore_link = spy_restore
        OutageProcess(
            sim,
            controller,
            spec,
            outage_rng(seed=seed) if spec.rate_per_second > 0 else None,
        )
        sim.run(until=self.HORIZON)
        return events, sorted(net.links)

    @pytest.mark.parametrize("seed", [1, 9, 23])
    def test_sampled_process_replays_exactly(self, seed):
        spec = OutageSpec(
            rate_per_second=0.5, mean_duration_seconds=0.5,
            start_after=0.0,
        )
        events, link_names = self._recorded(spec, seed)
        assert len(events) > 3
        schedule = compute_outage_schedule(
            spec, link_names, outage_rng(seed=seed), self.HORIZON
        )
        assert [(t.time, t.link, t.up) for t in schedule] == events

    def test_explicit_plus_sampled_with_cap_replays_exactly(self):
        spec = OutageSpec(
            events=(
                OutageEvent(link="S-0->S-1", at=1.0, duration=2.0),
                OutageEvent(link="S-0->S-1", at=2.0, duration=9.0),
            ),
            rate_per_second=0.4,
            mean_duration_seconds=1.0,
            start_after=0.0,
            max_outages=4,
        )
        events, link_names = self._recorded(spec, seed=5)
        schedule = compute_outage_schedule(
            spec, link_names, outage_rng(seed=5), self.HORIZON
        )
        assert [(t.time, t.link, t.up) for t in schedule] == events
        # The overlapping-window merge collapsed to effective
        # transitions only, and the cap held on both sides.
        downs = sum(1 for t in schedule if not t.up)
        assert 0 < downs <= 4 + 1  # explicit pair merged to one down
