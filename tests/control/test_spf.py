"""SPF correctness and the load-bearing BFS equivalence.

The control plane's Dijkstra must reproduce the build-time BFS tables of
:class:`~repro.net.routing.StaticRouting` exactly under unit costs —
otherwise restoring a failed link would leave the network on different
(equally short) routes than it started on, and the outage-free
bit-identity guarantee would silently break.
"""

import pytest

from repro.control import SpfRouting, spf_from_network
from repro.net.network import Network
from repro.net.routing import RoutingError
from repro.scenario.generators import random_graph_topology, topology_routes
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator


def spec_adjacency(topology):
    """The adjacency StaticRouting sees at build time, as a dict."""
    adj = {node: [] for node in topology.nodes}
    for att in topology.host_attachments:
        adj[att.host] = [att.switch]
        adj[att.switch].append(att.host)
    for link in topology.links:
        adj[link.src].append(link.dst)
    return adj


def all_nodes(topology):
    return tuple(topology.nodes) + topology.host_names


class TestBfsEquivalence:
    @pytest.mark.parametrize("gen_seed", [1, 2, 5, 11])
    def test_next_hops_match_static_routing_everywhere(self, gen_seed):
        topology = random_graph_topology(gen_seed, num_switches=7)
        bfs = topology_routes(topology)
        spf = SpfRouting(spec_adjacency(topology))
        for src in all_nodes(topology):
            for dst in all_nodes(topology):
                if src == dst:
                    continue
                assert spf.next_hop(src, dst) == bfs.next_hop(src, dst), (
                    f"seed {gen_seed}: {src}->{dst}"
                )

    @pytest.mark.parametrize("gen_seed", [3, 7])
    def test_full_paths_match(self, gen_seed):
        topology = random_graph_topology(
            gen_seed, num_switches=6, scale_free=True
        )
        bfs = topology_routes(topology)
        spf = SpfRouting(spec_adjacency(topology))
        hosts = topology.host_names
        for src in hosts:
            for dst in hosts:
                if src != dst:
                    assert spf.path(src, dst) == bfs.path(src, dst)


class TestWeightedAndPartial:
    def test_costs_divert_from_hop_count_shortest(self):
        adj = {"A": ["B", "C"], "B": [], "C": ["B"]}
        unit = SpfRouting(adj)
        assert unit.path("A", "B") == ["A", "B"]
        weighted = SpfRouting(adj, costs={("A", "B"): 5.0})
        assert weighted.path("A", "B") == ["A", "C", "B"]

    def test_nonpositive_cost_rejected(self):
        with pytest.raises(ValueError):
            SpfRouting({"A": ["B"], "B": []}, costs={("A", "B"): 0.0})

    def test_edge_to_undeclared_node_rejected(self):
        with pytest.raises(ValueError):
            SpfRouting({"A": ["ghost"]})

    def test_unreachable_raises_routing_error(self):
        spf = SpfRouting({"A": ["B"], "B": [], "C": []})
        with pytest.raises(RoutingError):
            spf.next_hop("B", "A")
        with pytest.raises(RoutingError):
            spf.next_hop("A", "C")


class TestFromNetwork:
    def _diamond(self):
        net = Network(Simulator(), lambda name, link: FifoScheduler())
        for name in ("S-A", "S-B", "S-C", "S-D"):
            net.add_switch(name)
        for src, dst in (
            ("S-A", "S-B"), ("S-B", "S-C"), ("S-A", "S-D"), ("S-D", "S-C")
        ):
            net.add_link(src, dst)
        net.add_host("h-src", "S-A")
        net.add_host("h-dst", "S-C")
        return net

    def test_live_links_reproduce_build_time_routes(self):
        net = self._diamond()
        spf = spf_from_network(net, {name: True for name in net.links})
        assert spf.path("h-src", "h-dst") == net.routing.path(
            "h-src", "h-dst"
        )

    def test_down_link_excluded(self):
        net = self._diamond()
        state = {name: True for name in net.links}
        state["S-A->S-B"] = False
        spf = spf_from_network(net, state)
        assert spf.path("h-src", "h-dst") == [
            "h-src", "S-A", "S-D", "S-C", "h-dst"
        ]

    def test_fully_partitioned_destination(self):
        net = self._diamond()
        state = {name: True for name in net.links}
        state["S-B->S-C"] = False
        state["S-D->S-C"] = False
        spf = spf_from_network(net, state)
        with pytest.raises(RoutingError):
            spf.next_hop("S-A", "h-dst")
