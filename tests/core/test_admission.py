"""Tests for measurement-based admission control (Section 9)."""

import pytest

from repro.core.admission import (
    AdmissionConfig,
    AdmissionController,
    AdmissionVerdict,
)
from repro.core.measurement import MeasurementConfig, SwitchMeasurement
from repro.net.packet import ServiceClass
from repro.net.topology import single_link_topology
from repro.sched.fifo import FifoScheduler
from tests.conftest import make_packet

LINK = "A->B"
MU = 1_000_000  # link speed in the fixture topology


@pytest.fixture
def port(sim):
    net = single_link_topology(sim, lambda n, l: FifoScheduler(), rate_bps=MU)
    return net.port_for_link(LINK)


class TestAdmissionConfig:
    def test_defaults(self):
        config = AdmissionConfig()
        assert config.realtime_quota == pytest.approx(0.9)
        assert config.num_classes == 2

    @pytest.mark.parametrize("quota", [0.0, 1.0, -0.5, 1.5])
    def test_rejects_bad_quota(self, quota):
        with pytest.raises(ValueError):
            AdmissionConfig(realtime_quota=quota)

    def test_rejects_empty_class_bounds(self):
        with pytest.raises(ValueError):
            AdmissionConfig(class_bounds_seconds=())

    def test_rejects_unsorted_class_bounds(self):
        with pytest.raises(ValueError):
            AdmissionConfig(class_bounds_seconds=(0.2, 0.1))
        with pytest.raises(ValueError):
            AdmissionConfig(class_bounds_seconds=(0.1, 0.1))


class TestChooseClass:
    def test_picks_cheapest_class_that_meets_target(self):
        controller = AdmissionController(
            AdmissionConfig(class_bounds_seconds=(0.02, 0.2))
        )
        # A lax target can ride the low-priority (cheap) class.
        assert controller.choose_class(0.5) == 1
        # A target between the bounds must use the tight class.
        assert controller.choose_class(0.1) == 0
        # Exactly at a bound is admissible into that class.
        assert controller.choose_class(0.2) == 1

    def test_infeasible_target_returns_none(self):
        controller = AdmissionController(
            AdmissionConfig(class_bounds_seconds=(0.02, 0.2))
        )
        assert controller.choose_class(0.01) is None


class TestPredictedAdmission:
    def controller(self):
        return AdmissionController(
            AdmissionConfig(realtime_quota=0.9, class_bounds_seconds=(0.02, 0.2))
        )

    def test_accepts_on_idle_link(self, port):
        controller = self.controller()
        decision = controller.check_predicted(
            LINK, port, priority_class=0,
            token_rate_bps=85_000, bucket_depth_bits=10_000, now=0.0,
        )
        assert decision.accepted
        assert decision.verdict is AdmissionVerdict.ACCEPT

    def test_criterion_1_rejects_when_quota_exceeded(self, port):
        controller = self.controller()
        # Reservations count toward nu-hat: book 850 kbit/s of guarantees.
        controller.record_guaranteed(LINK, "g1", 850_000)
        decision = controller.check_predicted(
            LINK, port, priority_class=1,
            token_rate_bps=85_000, bucket_depth_bits=1_000, now=0.0,
        )
        assert not decision.accepted
        assert decision.verdict is AdmissionVerdict.REJECT_UTILIZATION

    def test_criterion_2_rejects_oversized_bucket(self, port):
        controller = self.controller()
        # Class 0 bound is 20 ms; residual ~915 kbit/s.  A bucket bigger
        # than 0.02 * residual bits must be refused at class 0.
        decision = controller.check_predicted(
            LINK, port, priority_class=0,
            token_rate_bps=85_000, bucket_depth_bits=50_000, now=0.0,
        )
        assert not decision.accepted
        assert decision.verdict is AdmissionVerdict.REJECT_DELAY_IMPACT

    def test_criterion_2_checks_lower_classes_too(self, port):
        controller = self.controller()
        # A class-0 flow whose bucket passes class 0's headroom but not
        # class 1's would also be rejected; construct the reverse: admit at
        # class 1 still checks only class 1.
        ok = controller.check_predicted(
            LINK, port, priority_class=1,
            token_rate_bps=85_000, bucket_depth_bits=50_000, now=0.0,
        )
        assert ok.accepted  # 0.2 s * ~915 kbit/s >> 50 kbit

    def test_measured_delay_eats_headroom(self, sim, port):
        controller = self.controller()
        meter = SwitchMeasurement(
            port, MeasurementConfig(delay_window=1000.0)
        )
        controller.attach_measurement(LINK, meter)
        # Manufacture ~180 ms of measured class-1 delay: 181 predicted
        # packets back-to-back (1 ms each at 1 Mbit/s).
        for seq in range(182):
            port.enqueue(
                make_packet(
                    flow_id="load",
                    service_class=ServiceClass.PREDICTED,
                    priority_class=1,
                    sequence=seq,
                    destination="dst-host",
                )
            )
        sim.run(until=0.5)
        d_hat = meter.class_delay_bound(1, sim.now)
        assert d_hat > 0.15
        # Remaining headroom (0.2 - d_hat) * residual is now small; a
        # 50-kbit bucket no longer fits at class 1.
        decision = controller.check_predicted(
            LINK, port, priority_class=1,
            token_rate_bps=85_000, bucket_depth_bits=50_000, now=sim.now,
        )
        assert not decision.accepted
        assert decision.verdict is AdmissionVerdict.REJECT_DELAY_IMPACT

    def test_decisions_are_logged(self, port):
        controller = self.controller()
        controller.check_predicted(
            LINK, port, priority_class=1,
            token_rate_bps=85_000, bucket_depth_bits=1_000, now=0.0,
        )
        controller.record_guaranteed(LINK, "g", 900_000)
        controller.check_predicted(
            LINK, port, priority_class=1,
            token_rate_bps=85_000, bucket_depth_bits=1_000, now=0.0,
        )
        assert len(controller.decisions) == 2
        assert controller.decisions[0].accepted
        assert not controller.decisions[1].accepted


class TestGuaranteedAdmission:
    def controller(self):
        return AdmissionController(AdmissionConfig(realtime_quota=0.9))

    def test_accepts_within_quota(self, port):
        controller = self.controller()
        decision = controller.check_guaranteed(LINK, port, 170_000, now=0.0)
        assert decision.accepted

    def test_rejects_when_reservations_fill_quota(self, port):
        controller = self.controller()
        controller.record_guaranteed(LINK, "g1", 800_000)
        decision = controller.check_guaranteed(LINK, port, 170_000, now=0.0)
        assert not decision.accepted
        assert decision.verdict is AdmissionVerdict.REJECT_NO_CAPACITY

    def test_quota_boundary_exact_fill_allowed(self, port):
        controller = self.controller()
        controller.record_guaranteed(LINK, "g1", 700_000)
        # 700k reserved + 200k = 900k = quota exactly: the structural check
        # (<=) passes but the utilization check (>=) refuses — the link
        # would have nothing left over.
        decision = controller.check_guaranteed(LINK, port, 200_000, now=0.0)
        assert not decision.accepted

    def test_release_frees_capacity(self, port):
        controller = self.controller()
        controller.record_guaranteed(LINK, "g1", 800_000)
        controller.release_guaranteed(LINK, "g1")
        decision = controller.check_guaranteed(LINK, port, 170_000, now=0.0)
        assert decision.accepted

    def test_release_unknown_flow_is_noop(self, port):
        controller = self.controller()
        controller.release_guaranteed(LINK, "never-booked")
        assert controller.reserved_guaranteed_bps(LINK) == 0.0

    def test_reserved_sum(self, port):
        controller = self.controller()
        controller.record_guaranteed(LINK, "a", 100_000)
        controller.record_guaranteed(LINK, "b", 200_000)
        assert controller.reserved_guaranteed_bps(LINK) == pytest.approx(300_000)
