"""Property-based tests for admission-control monotonicity.

Sensible admission is monotone: if a request is refused, any strictly
more demanding request (bigger bucket, higher rate) must also be refused;
if accepted, any strictly less demanding one must also be accepted.  The
paper's criteria (1) and (2) have this property analytically; these tests
pin it against regressions.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionConfig, AdmissionController
from repro.net.topology import single_link_topology
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator

LINK = "A->B"


def make_port():
    sim = Simulator()
    net = single_link_topology(sim, lambda n, l: FifoScheduler())
    return net.port_for_link(LINK)


rates = st.floats(min_value=1_000.0, max_value=900_000.0)
buckets = st.floats(min_value=100.0, max_value=500_000.0)
reservations = st.floats(min_value=0.0, max_value=900_000.0)


class TestPredictedMonotonicity:
    @given(rate=rates, bucket=buckets, reserved=reservations)
    @settings(max_examples=100, deadline=None)
    def test_smaller_bucket_never_hurts(self, rate, bucket, reserved):
        port = make_port()
        controller = AdmissionController(
            AdmissionConfig(class_bounds_seconds=(0.05, 0.5))
        )
        controller.record_guaranteed(LINK, "g", reserved)
        big = controller.check_predicted(
            LINK, port, 0, rate, bucket, now=0.0
        ).accepted
        small = controller.check_predicted(
            LINK, port, 0, rate, bucket / 2.0, now=0.0
        ).accepted
        if big:
            assert small

    @given(rate=rates, bucket=buckets, reserved=reservations)
    @settings(max_examples=100, deadline=None)
    def test_lower_rate_never_hurts(self, rate, bucket, reserved):
        port = make_port()
        controller = AdmissionController(
            AdmissionConfig(class_bounds_seconds=(0.05, 0.5))
        )
        controller.record_guaranteed(LINK, "g", reserved)
        high = controller.check_predicted(
            LINK, port, 1, rate, bucket, now=0.0
        ).accepted
        low = controller.check_predicted(
            LINK, port, 1, rate / 2.0, bucket, now=0.0
        ).accepted
        if high:
            assert low

    @given(rate=rates, bucket=buckets)
    @settings(max_examples=100, deadline=None)
    def test_lower_priority_never_stricter(self, rate, bucket):
        """Criterion (2) checks classes j >= i, so asking for a HIGHER
        priority (smaller i) can only add constraints."""
        port = make_port()
        controller = AdmissionController(
            AdmissionConfig(class_bounds_seconds=(0.05, 0.5))
        )
        tight = controller.check_predicted(
            LINK, port, 0, rate, bucket, now=0.0
        ).accepted
        loose = controller.check_predicted(
            LINK, port, 1, rate, bucket, now=0.0
        ).accepted
        if tight:
            assert loose


class TestGuaranteedMonotonicity:
    @given(rate=rates, reserved=reservations)
    @settings(max_examples=100, deadline=None)
    def test_lower_clock_rate_never_hurts(self, rate, reserved):
        port = make_port()
        controller = AdmissionController(AdmissionConfig())
        controller.record_guaranteed(LINK, "g", reserved)
        high = controller.check_guaranteed(LINK, port, rate, now=0.0).accepted
        low = controller.check_guaranteed(
            LINK, port, rate / 2.0, now=0.0
        ).accepted
        if high:
            assert low

    @given(rate=rates, extra=reservations)
    @settings(max_examples=100, deadline=None)
    def test_more_reservations_never_help(self, rate, extra):
        port = make_port()
        lightly = AdmissionController(AdmissionConfig())
        heavily = AdmissionController(AdmissionConfig())
        heavily.record_guaranteed(LINK, "g", extra)
        light = lightly.check_guaranteed(LINK, port, rate, now=0.0).accepted
        heavy = heavily.check_guaranteed(LINK, port, rate, now=0.0).accepted
        if heavy:
            assert light
