"""Tests for the Parekh-Gallager bound computations (Section 4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import (
    parekh_gallager_fluid_bound,
    parekh_gallager_packet_bound,
    parekh_gallager_paper_bound,
    predicted_path_bound,
    required_clock_rate,
)


class TestFluidBound:
    def test_basic_value(self):
        # b = 50 000 bits, r = 85 000 bit/s -> 50/85 s
        assert parekh_gallager_fluid_bound(50_000, 85_000) == pytest.approx(
            50_000 / 85_000
        )

    def test_doubling_rate_halves_bound(self):
        one = parekh_gallager_fluid_bound(10_000, 1_000)
        two = parekh_gallager_fluid_bound(10_000, 2_000)
        assert one == pytest.approx(2 * two)

    @pytest.mark.parametrize("b,r", [(0, 1000), (-1, 1000), (1000, 0), (1000, -5)])
    def test_rejects_nonpositive(self, b, r):
        with pytest.raises(ValueError):
            parekh_gallager_fluid_bound(b, r)

    @given(
        b=st.floats(min_value=1.0, max_value=1e9),
        r=st.floats(min_value=1.0, max_value=1e9),
    )
    def test_positive_and_scales_linearly_in_b(self, b, r):
        bound = parekh_gallager_fluid_bound(b, r)
        assert bound > 0
        assert parekh_gallager_fluid_bound(2 * b, r) == pytest.approx(
            2 * bound, rel=1e-9
        )


class TestPacketBound:
    def test_single_hop_adds_only_store_forward(self):
        fluid = parekh_gallager_fluid_bound(50_000, 85_000)
        packet = parekh_gallager_packet_bound(
            50_000, 85_000, 1000, [1_000_000]
        )
        assert packet == pytest.approx(fluid + 1000 / 1_000_000)

    def test_multi_hop_adds_packetization_terms(self):
        two_hop = parekh_gallager_packet_bound(
            50_000, 85_000, 1000, [1_000_000, 1_000_000]
        )
        one_hop = parekh_gallager_packet_bound(50_000, 85_000, 1000, [1_000_000])
        # Extra hop adds p/r (packetization) + p/C (store-and-forward).
        assert two_hop - one_hop == pytest.approx(
            1000 / 85_000 + 1000 / 1_000_000
        )

    def test_packet_bound_dominates_fluid(self):
        fluid = parekh_gallager_fluid_bound(50_000, 85_000)
        packet = parekh_gallager_packet_bound(
            50_000, 85_000, 1000, [1_000_000] * 4
        )
        assert packet > fluid

    def test_clock_rate_above_link_speed_rejected(self):
        with pytest.raises(ValueError):
            parekh_gallager_packet_bound(1000, 2_000_000, 1000, [1_000_000])

    def test_requires_a_hop(self):
        with pytest.raises(ValueError):
            parekh_gallager_packet_bound(1000, 1000, 1000, [])

    @pytest.mark.parametrize("size", [0, -100])
    def test_rejects_bad_packet_size(self, size):
        with pytest.raises(ValueError):
            parekh_gallager_packet_bound(1000, 1000, size, [1_000_000])

    def test_rejects_bad_link_rate(self):
        with pytest.raises(ValueError):
            parekh_gallager_packet_bound(1000, 1000, 1000, [0.0])

    @given(hops=st.integers(min_value=1, max_value=10))
    def test_monotone_in_hops(self, hops):
        bounds = [
            parekh_gallager_packet_bound(50_000, 85_000, 1000, [1_000_000] * h)
            for h in range(1, hops + 1)
        ]
        assert bounds == sorted(bounds)


class TestPaperBound:
    """The exact Table 3 'P-G bound' column values, in tx-time units."""

    TX = 1000 / 1_000_000  # one packet transmission time (seconds)

    def paper_units(self, seconds: float) -> float:
        return seconds / self.TX

    def test_guaranteed_average_one_hop_matches_table3(self):
        # b = 50 packets, r = A = 85 pkt/s -> 588.24 tx-times at 1 hop.
        bound = parekh_gallager_paper_bound(50_000, 85_000, 1000, hops=1)
        assert self.paper_units(bound) == pytest.approx(588.24, abs=0.01)

    def test_guaranteed_average_three_hops_matches_table3(self):
        bound = parekh_gallager_paper_bound(50_000, 85_000, 1000, hops=3)
        assert self.paper_units(bound) == pytest.approx(611.76, abs=0.01)

    def test_guaranteed_peak_two_hops_matches_table3(self):
        # Peak flows: r = 2A = 170 pkt/s, b = one packet.
        bound = parekh_gallager_paper_bound(1000, 170_000, 1000, hops=2)
        assert self.paper_units(bound) == pytest.approx(11.76, abs=0.01)

    def test_guaranteed_peak_four_hops_matches_table3(self):
        bound = parekh_gallager_paper_bound(1000, 170_000, 1000, hops=4)
        assert self.paper_units(bound) == pytest.approx(23.53, abs=0.01)

    def test_rejects_zero_hops(self):
        with pytest.raises(ValueError):
            parekh_gallager_paper_bound(1000, 1000, 1000, hops=0)

    def test_rejects_bad_packet(self):
        with pytest.raises(ValueError):
            parekh_gallager_paper_bound(1000, 1000, 0, hops=1)


class TestPredictedPathBound:
    def test_sums_per_switch_bounds(self):
        assert predicted_path_bound([0.1, 0.1, 0.1]) == pytest.approx(0.3)

    def test_single_switch(self):
        assert predicted_path_bound([0.02]) == pytest.approx(0.02)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            predicted_path_bound([])

    def test_rejects_nonpositive_entries(self):
        with pytest.raises(ValueError):
            predicted_path_bound([0.1, 0.0])

    @given(st.lists(st.floats(min_value=1e-6, max_value=10.0), min_size=1, max_size=8))
    def test_bound_at_least_max_single_hop(self, bounds):
        assert predicted_path_bound(bounds) >= max(bounds)


class TestRequiredClockRate:
    def test_inverts_fluid_bound(self):
        rate = required_clock_rate(50_000, 0.5)
        assert parekh_gallager_fluid_bound(50_000, rate) == pytest.approx(0.5)

    def test_tighter_target_needs_more_rate(self):
        assert required_clock_rate(50_000, 0.1) > required_clock_rate(50_000, 0.5)

    @pytest.mark.parametrize("b,d", [(0, 1.0), (1000, 0.0), (1000, -1.0)])
    def test_rejects_nonpositive(self, b, d):
        with pytest.raises(ValueError):
            required_clock_rate(b, d)

    @given(
        b=st.floats(min_value=1.0, max_value=1e8),
        d=st.floats(min_value=1e-4, max_value=100.0),
    )
    def test_roundtrip_property(self, b, d):
        rate = required_clock_rate(b, d)
        assert parekh_gallager_fluid_bound(b, rate) == pytest.approx(d, rel=1e-9)
