"""Tests for the Section 10 service extensions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.extensions import (
    importance_to_priority,
    layered_class_bounds,
    stale_threshold_for,
    unbundle_priority,
)


class TestLayeredClassBounds:
    def test_replicates_each_bound(self):
        assert layered_class_bounds([0.1, 1.0], 2) == [0.1, 0.1, 1.0, 1.0]

    def test_single_level_is_identity(self):
        assert layered_class_bounds([0.1, 1.0], 1) == [0.1, 1.0]

    def test_result_is_nondecreasing(self):
        expanded = layered_class_bounds([0.01, 0.1, 1.0], 3)
        assert expanded == sorted(expanded)

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            layered_class_bounds([0.1], 0)

    def test_rejects_nonincreasing_bounds(self):
        with pytest.raises(ValueError):
            layered_class_bounds([0.1, 0.1], 2)
        with pytest.raises(ValueError):
            layered_class_bounds([0.2, 0.1], 2)

    def test_rejects_nonpositive_bounds(self):
        with pytest.raises(ValueError):
            layered_class_bounds([0.0, 0.1], 2)


class TestImportanceMapping:
    def test_importance_zero_gets_class_top_slot(self):
        assert importance_to_priority(0, 0, 2) == 0
        assert importance_to_priority(1, 0, 2) == 2

    def test_less_important_rides_lower(self):
        top = importance_to_priority(0, 0, 3)
        mid = importance_to_priority(0, 1, 3)
        low = importance_to_priority(0, 2, 3)
        assert top < mid < low

    def test_lower_importance_still_above_next_class(self):
        # The paper: "just behind the more important packets, but with
        # higher priority than the classes with larger D_i".
        lowest_of_class0 = importance_to_priority(0, 1, 2)
        top_of_class1 = importance_to_priority(1, 0, 2)
        assert lowest_of_class0 < top_of_class1

    def test_rejects_out_of_range_importance(self):
        with pytest.raises(ValueError):
            importance_to_priority(0, 2, 2)
        with pytest.raises(ValueError):
            importance_to_priority(0, -1, 2)

    def test_rejects_negative_class(self):
        with pytest.raises(ValueError):
            importance_to_priority(-1, 0, 2)

    @given(
        base=st.integers(min_value=0, max_value=10),
        levels=st.integers(min_value=1, max_value=5),
        importance=st.integers(min_value=0, max_value=4),
    )
    def test_unbundle_inverts_bundle(self, base, levels, importance):
        if importance >= levels:
            importance %= levels
        priority = importance_to_priority(base, importance, levels)
        assert unbundle_priority(priority, levels) == (base, importance)

    @given(
        levels=st.integers(min_value=1, max_value=5),
        priorities=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=5),
                st.integers(min_value=0, max_value=4),
            ),
            min_size=2,
            max_size=10,
        ),
    )
    def test_mapping_is_injective(self, levels, priorities):
        keys = [
            (base, imp % levels) for base, imp in priorities
        ]
        mapped = [importance_to_priority(b, i, levels) for b, i in keys]
        assert len(set(mapped)) == len(set(keys))


class TestStaleThreshold:
    def test_scales_with_remaining_hops(self):
        one = stale_threshold_for(0.1, 1)
        three = stale_threshold_for(0.1, 3)
        assert three == pytest.approx(3 * one)

    def test_slack_factor_stretches(self):
        tight = stale_threshold_for(0.1, 2, slack_factor=1.0)
        loose = stale_threshold_for(0.1, 2, slack_factor=4.0)
        assert loose == pytest.approx(4 * tight)

    def test_default_slack_is_two(self):
        assert stale_threshold_for(0.1, 1) == pytest.approx(0.2)

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            stale_threshold_for(0.0, 1)
        with pytest.raises(ValueError):
            stale_threshold_for(0.1, 0)
        with pytest.raises(ValueError):
            stale_threshold_for(0.1, 1, slack_factor=0.5)


class TestUnbundle:
    def test_basic(self):
        assert unbundle_priority(5, 2) == (2, 1)

    def test_rejects_zero_levels(self):
        with pytest.raises(ValueError):
            unbundle_priority(3, 0)
