"""Tests for per-switch measurement (Section 9's nu-hat and d-hat_j)."""

import pytest

from repro.core.measurement import MeasurementConfig, SwitchMeasurement
from repro.net.packet import ServiceClass
from repro.net.topology import single_link_topology
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from tests.conftest import make_packet


def make_port(sim):
    net = single_link_topology(sim, lambda n, l: FifoScheduler())
    return net.port_for_link("A->B")


class TestMeasurementConfig:
    def test_defaults_valid(self):
        config = MeasurementConfig()
        assert config.utilization_window > 0
        assert config.delay_window > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"utilization_window": 0.0},
            {"delay_window": -1.0},
            {"utilization_safety": 0.5},
            {"delay_safety": 0.99},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            MeasurementConfig(**kwargs)


class TestSwitchMeasurement:
    def test_counts_realtime_bits_only(self, sim):
        port = make_port(sim)
        meter = SwitchMeasurement(port, MeasurementConfig(utilization_window=10.0))
        for service_class in (
            ServiceClass.GUARANTEED,
            ServiceClass.PREDICTED,
            ServiceClass.DATAGRAM,
        ):
            port.enqueue(
                make_packet(
                    flow_id=f"f-{service_class.name}",
                    service_class=service_class,
                    destination="dst-host",
                )
            )
        sim.run(until=1.0)
        # 2 real-time packets x 1000 bits; with only 1 s elapsed the meter
        # divides by elapsed time (not the full 10 s window) -> 2000 bit/s.
        assert meter.realtime_utilization_bps(1.0) == pytest.approx(2000.0)
        # At t=10 the window is full: the departure at exactly t=0 has aged
        # out (half-open window), leaving 1 packet / 10 s = 100 bit/s.
        assert meter.realtime_utilization_bps(10.0) == pytest.approx(100.0)

    def test_no_traffic_means_zero_utilization(self, sim):
        port = make_port(sim)
        meter = SwitchMeasurement(port)
        assert meter.realtime_utilization_bps(0.0) == 0.0

    def test_utilization_safety_scales(self, sim):
        port = make_port(sim)
        meter = SwitchMeasurement(
            port,
            MeasurementConfig(utilization_window=10.0, utilization_safety=2.0),
        )
        port.enqueue(
            make_packet(
                service_class=ServiceClass.PREDICTED, destination="dst-host"
            )
        )
        sim.run(until=5.0)
        # 1000 bits over 5 s elapsed x safety 2.0 -> 400 bit/s.
        assert meter.realtime_utilization_bps(5.0) == pytest.approx(400.0)

    def test_class_delay_tracks_predicted_only(self, sim):
        port = make_port(sim)
        meter = SwitchMeasurement(port)
        # A guaranteed packet: contributes to nu-hat but defines no d-hat_j.
        port.enqueue(
            make_packet(
                flow_id="g",
                service_class=ServiceClass.GUARANTEED,
                destination="dst-host",
            )
        )
        sim.run(until=1.0)
        assert meter.observed_classes() == []
        assert meter.class_delay_bound(0, 1.0) == 0.0

    def test_class_delay_records_max_wait(self, sim):
        port = make_port(sim)
        meter = SwitchMeasurement(port, MeasurementConfig(delay_window=30.0))
        # Two back-to-back predicted packets: the second waits one
        # transmission time (1 ms at 1 Mbit/s for 1000 bits).
        for seq in range(3):
            port.enqueue(
                make_packet(
                    flow_id="p",
                    service_class=ServiceClass.PREDICTED,
                    priority_class=0,
                    sequence=seq,
                    destination="dst-host",
                )
            )
        sim.run(until=1.0)
        assert meter.observed_classes() == [0]
        # Third packet waited 2 transmission times = 2 ms.
        assert meter.class_delay_bound(0, 1.0) == pytest.approx(0.002, abs=1e-6)

    def test_delay_safety_scales(self, sim):
        port = make_port(sim)
        meter = SwitchMeasurement(
            port, MeasurementConfig(delay_window=30.0, delay_safety=3.0)
        )
        for seq in range(2):
            port.enqueue(
                make_packet(
                    flow_id="p",
                    service_class=ServiceClass.PREDICTED,
                    sequence=seq,
                    destination="dst-host",
                )
            )
        sim.run(until=1.0)
        # Second packet waited 1 ms; safety factor 3 -> 3 ms.
        assert meter.class_delay_bound(0, 1.0) == pytest.approx(0.003, abs=1e-6)

    def test_window_expiry_forgets_old_load(self, sim):
        port = make_port(sim)
        meter = SwitchMeasurement(
            port, MeasurementConfig(utilization_window=1.0, delay_window=1.0)
        )
        port.enqueue(
            make_packet(
                service_class=ServiceClass.PREDICTED, destination="dst-host"
            )
        )
        sim.run(until=0.5)
        assert meter.realtime_utilization_bps(0.5) > 0.0
        # Long after the window, both estimators return to zero.
        assert meter.realtime_utilization_bps(100.0) == 0.0
        assert meter.class_delay_bound(0, 100.0) == 0.0

    def test_separate_classes_tracked_separately(self, sim):
        port = make_port(sim)
        meter = SwitchMeasurement(port)
        for cls in (0, 1, 1):
            port.enqueue(
                make_packet(
                    flow_id=f"p{cls}",
                    service_class=ServiceClass.PREDICTED,
                    priority_class=cls,
                    destination="dst-host",
                )
            )
        sim.run(until=1.0)
        assert meter.observed_classes() == [0, 1]
