"""Tests for rigid and adaptive play-back applications (Sections 2-3)."""

import pytest

from repro.core.playback import AdaptivePlayback, RigidPlayback
from repro.net.packet import Packet, ServiceClass
from repro.net.topology import single_link_topology
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator


@pytest.fixture
def rig(sim):
    """A single-link net; returns (net, deliver) where deliver(flow, t_gen,
    t_arrive) injects a packet straight into the destination host."""
    net = single_link_topology(sim, lambda n, l: FifoScheduler())
    host = net.hosts["dst-host"]

    def deliver(flow_id: str, created_at: float, arrive_at: float) -> None:
        packet = Packet(
            flow_id=flow_id,
            size_bits=1000,
            created_at=created_at,
            source="src-host",
            destination="dst-host",
            service_class=ServiceClass.PREDICTED,
        )
        sim.schedule_at(arrive_at, lambda p=packet: host.receive(p))

    return net, deliver


class TestRigidPlayback:
    def test_plays_packets_inside_bound(self, sim, rig):
        net, deliver = rig
        app = RigidPlayback(sim, net.hosts["dst-host"], "v", a_priori_bound=0.1)
        deliver("v", created_at=0.0, arrive_at=0.05)  # under the bound
        deliver("v", created_at=0.1, arrive_at=0.15)  # exactly 0.05 delay
        sim.run(until=1.0)
        stats = app.stats()
        assert stats.received == 2
        assert stats.played == 2
        assert stats.late == 0

    def test_counts_late_packets(self, sim, rig):
        net, deliver = rig
        app = RigidPlayback(sim, net.hosts["dst-host"], "v", a_priori_bound=0.1)
        deliver("v", created_at=0.0, arrive_at=0.25)  # delay 0.25 > 0.1
        sim.run(until=1.0)
        assert app.stats().late == 1
        assert app.loss_fraction == 1.0

    def test_offset_never_moves(self, sim, rig):
        net, deliver = rig
        app = RigidPlayback(sim, net.hosts["dst-host"], "v", a_priori_bound=0.2)
        for i in range(20):
            deliver("v", created_at=i * 0.01, arrive_at=i * 0.01 + 0.15)
        sim.run(until=1.0)
        assert app.current_offset() == 0.2
        assert len(app.offset_history) == 1

    def test_rejects_nonpositive_bound(self, sim, rig):
        net, __ = rig
        with pytest.raises(ValueError):
            RigidPlayback(sim, net.hosts["dst-host"], "v", a_priori_bound=0.0)

    def test_post_facto_bound_is_max_delay(self, sim, rig):
        net, deliver = rig
        app = RigidPlayback(sim, net.hosts["dst-host"], "v", a_priori_bound=1.0)
        deliver("v", created_at=0.0, arrive_at=0.03)
        deliver("v", created_at=0.1, arrive_at=0.19)  # delay 0.09 = max
        sim.run(until=1.0)
        assert app.post_facto_bound() == pytest.approx(0.09)


class TestAdaptivePlayback:
    def make_app(self, sim, net, **overrides):
        params = dict(
            target_loss=0.05,
            window=50,
            margin=1.0,
            initial_offset=0.5,
            adapt_every=10,
        )
        params.update(overrides)
        return AdaptivePlayback(sim, net.hosts["dst-host"], "v", **params)

    def test_offset_converges_toward_actual_delays(self, sim, rig):
        net, deliver = rig
        app = self.make_app(sim, net)
        # Constant 30 ms delay: the adaptive point should approach 30 ms,
        # far below the 500 ms initial offset.
        for i in range(100):
            deliver("v", created_at=i * 0.01, arrive_at=i * 0.01 + 0.03)
        sim.run(until=5.0)
        assert app.current_offset() == pytest.approx(0.03, rel=0.1)
        assert app.adaptations >= 1

    def test_adaptive_beats_rigid_offset(self, sim, rig):
        """Section 3: adaptive clients typically play back earlier than the
        a priori bound that a rigid client would sit at."""
        net, deliver = rig
        a_priori = 0.5
        adaptive = self.make_app(sim, net, initial_offset=a_priori)
        rigid = RigidPlayback(
            sim, net.hosts["dst-host"], "r", a_priori_bound=a_priori
        )
        for i in range(100):
            deliver("v", created_at=i * 0.01, arrive_at=i * 0.01 + 0.02)
            deliver("r", created_at=i * 0.01, arrive_at=i * 0.01 + 0.02)
        sim.run(until=5.0)
        assert adaptive.current_offset() < rigid.current_offset()

    def test_readapts_upward_after_network_shift(self, sim, rig):
        """The Section 3 narrative: a delay increase causes a brief loss
        burst, then the client re-adapts and stops losing."""
        net, deliver = rig
        app = self.make_app(sim, net, window=30, adapt_every=10)
        # Phase 1: 10 ms delays; phase 2: 100 ms delays.
        for i in range(60):
            deliver("v", created_at=i * 0.01, arrive_at=i * 0.01 + 0.01)
        for i in range(60, 160):
            deliver("v", created_at=i * 0.01, arrive_at=i * 0.01 + 0.10)
        sim.run(until=10.0)
        stats = app.stats()
        # Some packets missed the stale play-back point during the shift...
        assert stats.late > 0
        # ...but the client re-adapted to the new regime.
        assert app.current_offset() >= 0.09
        # And the tail of the run is loss-free: overall loss is bounded by
        # (roughly) the transition window.
        assert stats.late <= 40

    def test_offset_history_records_changes(self, sim, rig):
        net, deliver = rig
        app = self.make_app(sim, net)
        for i in range(50):
            deliver("v", created_at=i * 0.01, arrive_at=i * 0.01 + 0.02)
        sim.run(until=5.0)
        assert len(app.offset_history) >= 2
        times = [t for t, __ in app.offset_history]
        assert times == sorted(times)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"target_loss": 0.0},
            {"target_loss": 1.0},
            {"window": 5},
            {"margin": 0.9},
            {"adapt_every": 0},
        ],
    )
    def test_rejects_bad_parameters(self, sim, rig, kwargs):
        net, __ = rig
        with pytest.raises(ValueError):
            self.make_app(sim, net, **kwargs)

    def test_margin_inflates_offset(self, sim, rig):
        net, deliver = rig
        snug = self.make_app(sim, net, margin=1.0)
        padded = AdaptivePlayback(
            sim,
            net.hosts["dst-host"],
            "w",
            target_loss=0.05,
            window=50,
            margin=1.5,
            initial_offset=0.5,
            adapt_every=10,
        )
        for i in range(100):
            deliver("v", created_at=i * 0.01, arrive_at=i * 0.01 + 0.04)
            deliver("w", created_at=i * 0.01, arrive_at=i * 0.01 + 0.04)
        sim.run(until=5.0)
        assert padded.current_offset() == pytest.approx(
            1.5 * snug.current_offset(), rel=0.01
        )

    def test_stats_mean_delay(self, sim, rig):
        net, deliver = rig
        app = self.make_app(sim, net)
        for i in range(20):
            deliver("v", created_at=i * 0.01, arrive_at=i * 0.01 + 0.05)
        sim.run(until=5.0)
        stats = app.stats()
        assert stats.mean_delay == pytest.approx(0.05, abs=1e-9)
        assert stats.max_delay == pytest.approx(0.05, abs=1e-9)
