"""Tests for Section 12 pricing / accounting."""

import pytest

from repro.core.pricing import Invoice, Tariff, UsageMeter
from repro.net.packet import ServiceClass
from repro.net.topology import single_link_topology
from repro.sched.fifo import FifoScheduler
from tests.conftest import make_packet


class TestTariff:
    def test_default_ordering_valid(self):
        tariff = Tariff()
        assert tariff.guaranteed_per_mbit > tariff.predicted_per_mbit[0]
        assert tariff.predicted_per_mbit[-1] > tariff.datagram_per_mbit

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"guaranteed_per_mbit": 0.0},
            {"datagram_per_mbit": -1.0},
            {"predicted_per_mbit": ()},
            # Predicted class 0 as expensive as guaranteed:
            {"guaranteed_per_mbit": 5.0, "predicted_per_mbit": (5.0, 3.0)},
            # Non-decreasing within predicted classes:
            {"predicted_per_mbit": (3.0, 6.0)},
            # Datagram not cheapest:
            {"predicted_per_mbit": (6.0, 3.0), "datagram_per_mbit": 3.0},
            {"reservation_per_mbit_second": -0.1},
        ],
    )
    def test_rejects_broken_price_ladders(self, kwargs):
        with pytest.raises(ValueError):
            Tariff(**kwargs)

    def test_usage_price_by_class(self):
        tariff = Tariff(
            guaranteed_per_mbit=10.0,
            predicted_per_mbit=(6.0, 3.0),
            datagram_per_mbit=1.0,
        )
        assert tariff.usage_price_per_mbit(ServiceClass.GUARANTEED) == 10.0
        assert tariff.usage_price_per_mbit(ServiceClass.PREDICTED, 0) == 6.0
        assert tariff.usage_price_per_mbit(ServiceClass.PREDICTED, 1) == 3.0
        assert tariff.usage_price_per_mbit(ServiceClass.DATAGRAM) == 1.0

    def test_overflow_priority_clamps_to_cheapest_predicted(self):
        tariff = Tariff(predicted_per_mbit=(6.0, 3.0))
        assert tariff.usage_price_per_mbit(ServiceClass.PREDICTED, 7) == 3.0


class TestUsageMeter:
    def test_meters_departures_per_flow(self, sim):
        net = single_link_topology(sim, lambda n, l: FifoScheduler())
        meter = UsageMeter(Tariff())
        meter.attach(net.port_for_link("A->B"))
        port = net.port_for_link("A->B")
        for i in range(3):
            port.enqueue(
                make_packet(
                    flow_id="g",
                    service_class=ServiceClass.GUARANTEED,
                    sequence=i,
                    destination="dst-host",
                )
            )
        port.enqueue(
            make_packet(flow_id="d", destination="dst-host")
        )
        sim.run(until=1.0)
        g = meter.invoice_of("g")
        d = meter.invoice_of("d")
        assert g.usage_bits == 3000
        assert g.usage_charge == pytest.approx(10.0 * 3000 / 1e6)
        assert d.usage_charge == pytest.approx(1.0 * 1000 / 1e6)

    def test_price_ladder_realized(self, sim):
        """Same bits, different classes: guaranteed > high > low > datagram."""
        net = single_link_topology(sim, lambda n, l: FifoScheduler())
        meter = UsageMeter()
        port = net.port_for_link("A->B")
        meter.attach(port)
        cases = [
            ("g", ServiceClass.GUARANTEED, 0),
            ("ph", ServiceClass.PREDICTED, 0),
            ("pl", ServiceClass.PREDICTED, 1),
            ("d", ServiceClass.DATAGRAM, 0),
        ]
        for flow_id, service_class, priority in cases:
            port.enqueue(
                make_packet(
                    flow_id=flow_id,
                    service_class=service_class,
                    priority_class=priority,
                    destination="dst-host",
                )
            )
        sim.run(until=1.0)
        charges = [meter.invoice_of(flow).usage_charge for flow, __, __ in cases]
        assert charges == sorted(charges, reverse=True)
        assert len(set(charges)) == len(charges)

    def test_multi_hop_transit_charging(self, sim):
        """A flow metered at two ports pays twice per packet."""
        from repro.net.topology import chain_topology

        net = chain_topology(
            sim, lambda n, l: FifoScheduler(), num_switches=3,
            switch_names=["A", "B", "C"], host_names=["h1", "h2", "h3"],
        )
        meter = UsageMeter()
        for port in net.ports.values():
            meter.attach(port)
        net.hosts["h3"].default_handler = lambda packet: None
        net.hosts["h1"].send(
            make_packet(flow_id="f", source="h1", destination="h3")
        )
        sim.run(until=1.0)
        assert meter.invoice_of("f").usage_bits == 2000  # 1000 bits x 2 links


class TestReservations:
    def test_reservation_charge_accrues_with_time(self):
        meter = UsageMeter(Tariff(reservation_per_mbit_second=2.0))
        meter.open_reservation("g", rate_bps=500_000, now=0.0)
        meter.close_reservation("g", now=10.0)
        # 0.5 Mbit x 2.0 units/Mbit-s x 10 s = 10 units.
        assert meter.invoice_of("g").reservation_charge == pytest.approx(10.0)

    def test_double_open_rejected(self):
        meter = UsageMeter()
        meter.open_reservation("g", 1000.0, 0.0)
        with pytest.raises(ValueError):
            meter.open_reservation("g", 1000.0, 1.0)

    def test_close_unknown_raises(self):
        with pytest.raises(KeyError):
            UsageMeter().close_reservation("ghost", 1.0)

    def test_settle_bills_open_reservations(self):
        meter = UsageMeter(Tariff(reservation_per_mbit_second=1.0))
        meter.open_reservation("a", 1_000_000, now=0.0)
        meter.settle(now=5.0)
        assert meter.invoice_of("a").reservation_charge == pytest.approx(5.0)
        # Settling again later only bills the new interval.
        meter.settle(now=7.0)
        assert meter.invoice_of("a").reservation_charge == pytest.approx(7.0)

    def test_negative_interval_rejected(self):
        meter = UsageMeter()
        meter.open_reservation("a", 1000.0, now=5.0)
        with pytest.raises(ValueError):
            meter.close_reservation("a", now=1.0)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            UsageMeter().open_reservation("a", 0.0, 0.0)


class TestInvoices:
    def test_total_combines_usage_and_reservation(self):
        invoice = Invoice(flow_id="f", usage_charge=3.0, reservation_charge=2.0)
        assert invoice.total == pytest.approx(5.0)

    def test_invoices_sorted_by_flow(self):
        meter = UsageMeter()
        meter.open_reservation("b", 1000.0, 0.0)
        meter.open_reservation("a", 1000.0, 0.0)
        meter.settle(1.0)
        assert [inv.flow_id for inv in meter.invoices()] == ["a", "b"]

    def test_total_revenue(self):
        meter = UsageMeter(Tariff(reservation_per_mbit_second=1.0))
        meter.open_reservation("a", 1_000_000, 0.0)
        meter.open_reservation("b", 2_000_000, 0.0)
        meter.settle(1.0)
        assert meter.total_revenue() == pytest.approx(3.0)
