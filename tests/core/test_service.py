"""Tests for the Section 8 service interface."""

import pytest

from repro.core.service import (
    DatagramServiceSpec,
    FlowSpec,
    GuaranteedServiceSpec,
    PredictedServiceSpec,
)
from repro.net.packet import ServiceClass


class TestGuaranteedSpec:
    def test_carries_only_clock_rate(self):
        spec = GuaranteedServiceSpec(clock_rate_bps=170_000)
        assert spec.clock_rate_bps == 170_000
        assert spec.service_class is ServiceClass.GUARANTEED

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            GuaranteedServiceSpec(clock_rate_bps=0)
        with pytest.raises(ValueError):
            GuaranteedServiceSpec(clock_rate_bps=-1)

    def test_is_immutable(self):
        spec = GuaranteedServiceSpec(clock_rate_bps=1000)
        with pytest.raises(Exception):
            spec.clock_rate_bps = 2000


class TestPredictedSpec:
    def make(self, **overrides):
        params = dict(
            token_rate_bps=85_000,
            bucket_depth_bits=50_000,
            target_delay_seconds=0.3,
            target_loss_rate=0.01,
        )
        params.update(overrides)
        return PredictedServiceSpec(**params)

    def test_carries_filter_and_target(self):
        spec = self.make()
        assert spec.token_rate_bps == 85_000
        assert spec.bucket_depth_bits == 50_000
        assert spec.target_delay_seconds == 0.3
        assert spec.target_loss_rate == 0.01
        assert spec.service_class is ServiceClass.PREDICTED

    def test_default_loss_rate(self):
        spec = PredictedServiceSpec(
            token_rate_bps=1.0, bucket_depth_bits=1.0, target_delay_seconds=1.0
        )
        assert spec.target_loss_rate == 0.01

    @pytest.mark.parametrize(
        "field,value",
        [
            ("token_rate_bps", 0),
            ("token_rate_bps", -1),
            ("bucket_depth_bits", 0),
            ("target_delay_seconds", 0),
            ("target_loss_rate", -0.1),
            ("target_loss_rate", 1.0),
        ],
    )
    def test_rejects_bad_values(self, field, value):
        with pytest.raises(ValueError):
            self.make(**{field: value})

    def test_zero_loss_rate_allowed(self):
        # L = 0 is a legal (if demanding) request.
        assert self.make(target_loss_rate=0.0).target_loss_rate == 0.0


class TestDatagramSpec:
    def test_no_parameters_no_commitments(self):
        spec = DatagramServiceSpec()
        assert spec.service_class is ServiceClass.DATAGRAM


class TestFlowSpec:
    def test_delegates_service_class(self):
        flow = FlowSpec(
            flow_id="v1",
            source="Host-1",
            destination="Host-5",
            spec=GuaranteedServiceSpec(clock_rate_bps=170_000),
        )
        assert flow.service_class is ServiceClass.GUARANTEED

    def test_predicted_advertised_bound_sums_per_switch(self):
        flow = FlowSpec(
            flow_id="v2",
            source="Host-1",
            destination="Host-5",
            spec=PredictedServiceSpec(
                token_rate_bps=85_000,
                bucket_depth_bits=50_000,
                target_delay_seconds=0.6,
            ),
        )
        assert flow.advertised_bound([0.15, 0.15, 0.15]) == pytest.approx(0.45)

    def test_guaranteed_advertised_bound_is_none(self):
        # Section 8: the source computes b(r)/r itself.
        flow = FlowSpec(
            flow_id="v3",
            source="Host-1",
            destination="Host-2",
            spec=GuaranteedServiceSpec(clock_rate_bps=1000),
        )
        assert flow.advertised_bound([0.15]) is None

    def test_datagram_advertised_bound_is_none(self):
        flow = FlowSpec(
            flow_id="v4",
            source="Host-1",
            destination="Host-2",
            spec=DatagramServiceSpec(),
        )
        assert flow.advertised_bound([0.15]) is None
