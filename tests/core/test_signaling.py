"""Tests for flow establishment / signaling (Section 9)."""

import pytest

from repro.core.admission import AdmissionConfig, AdmissionController
from repro.core.service import (
    DatagramServiceSpec,
    FlowSpec,
    GuaranteedServiceSpec,
    PredictedServiceSpec,
)
from repro.core.signaling import FlowEstablishmentError, SignalingAgent
from repro.net.packet import Packet, ServiceClass
from repro.net.topology import paper_figure1_topology
from repro.sched.unified import UnifiedConfig, UnifiedScheduler
from repro.sim.engine import Simulator

CLASS_BOUNDS = (0.15, 1.5)


@pytest.fixture
def stack(sim):
    """Figure-1 chain with unified schedulers + admission + signaling."""

    def factory(name, link):
        return UnifiedScheduler(
            UnifiedConfig(capacity_bps=link.rate_bps, num_predicted_classes=2)
        )

    net = paper_figure1_topology(sim, factory)
    admission = AdmissionController(
        AdmissionConfig(realtime_quota=0.9, class_bounds_seconds=CLASS_BOUNDS)
    )
    signaling = SignalingAgent(net, admission)
    return net, admission, signaling


def guaranteed_flow(flow_id="g1", rate=170_000, src="Host-1", dst="Host-5"):
    return FlowSpec(
        flow_id=flow_id,
        source=src,
        destination=dst,
        spec=GuaranteedServiceSpec(clock_rate_bps=rate),
    )


def predicted_flow(
    flow_id="p1",
    src="Host-1",
    dst="Host-5",
    target_delay=0.6,
    bucket_bits=50_000,
):
    return FlowSpec(
        flow_id=flow_id,
        source=src,
        destination=dst,
        spec=PredictedServiceSpec(
            token_rate_bps=85_000,
            bucket_depth_bits=bucket_bits,
            target_delay_seconds=target_delay,
        ),
    )


class TestGuaranteedEstablishment:
    def test_grant_covers_full_path(self, stack):
        net, __, signaling = stack
        grant = signaling.establish(guaranteed_flow())
        assert grant.service_class is ServiceClass.GUARANTEED
        assert grant.link_names == [
            "S-1->S-2", "S-2->S-3", "S-3->S-4", "S-4->S-5",
        ]
        assert grant.priority_class is None
        assert grant.advertised_bound_seconds is None

    def test_clock_rate_installed_at_every_hop(self, stack):
        net, __, signaling = stack
        signaling.establish(guaranteed_flow(rate=170_000))
        for name in ("S-1->S-2", "S-2->S-3", "S-3->S-4", "S-4->S-5"):
            scheduler = net.port_for_link(name).scheduler
            assert scheduler.guaranteed_flows() == {"g1": 170_000}

    def test_reservations_recorded(self, stack):
        __, admission, signaling = stack
        signaling.establish(guaranteed_flow(rate=170_000))
        assert admission.reserved_guaranteed_bps("S-1->S-2") == 170_000

    def test_rejection_installs_nothing(self, stack):
        net, admission, signaling = stack
        # Fill S-3->S-4 almost to quota via a short flow, then ask for a
        # long flow that exceeds the quota only at that link.
        signaling.establish(
            guaranteed_flow("short", rate=800_000, src="Host-3", dst="Host-4")
        )
        with pytest.raises(FlowEstablishmentError):
            signaling.establish(guaranteed_flow("long", rate=170_000))
        # All-or-nothing: the long flow left no state at earlier links.
        assert admission.reserved_guaranteed_bps("S-1->S-2") == 0.0
        assert "long" not in net.port_for_link("S-1->S-2").scheduler.guaranteed_flows()
        assert "long" not in signaling.grants

    def test_duplicate_establishment_refused(self, stack):
        __, __, signaling = stack
        signaling.establish(guaranteed_flow())
        with pytest.raises(ValueError):
            signaling.establish(guaranteed_flow())

    def test_teardown_releases_everything(self, stack):
        net, admission, signaling = stack
        signaling.establish(guaranteed_flow(rate=170_000))
        signaling.teardown("g1")
        assert admission.reserved_guaranteed_bps("S-1->S-2") == 0.0
        assert net.port_for_link("S-1->S-2").scheduler.guaranteed_flows() == {}
        # Capacity is genuinely reusable.
        grant = signaling.establish(guaranteed_flow("g2", rate=800_000))
        assert grant.flow_id == "g2"

    def test_teardown_unknown_flow(self, stack):
        __, __, signaling = stack
        with pytest.raises(KeyError):
            signaling.teardown("ghost")


class TestPredictedEstablishment:
    def test_grant_carries_class_and_bound(self, stack):
        __, __, signaling = stack
        grant = signaling.establish(predicted_flow(target_delay=0.6))
        # 0.6 s over 4 hops -> 0.15 per switch -> class 0; bound = 4 * 0.15.
        assert grant.service_class is ServiceClass.PREDICTED
        assert grant.priority_class == 0
        assert grant.advertised_bound_seconds == pytest.approx(0.6)

    def test_lax_target_lands_in_cheap_class(self, stack):
        __, __, signaling = stack
        grant = signaling.establish(predicted_flow(target_delay=6.0))
        assert grant.priority_class == 1

    def test_infeasible_target_rejected(self, stack):
        __, __, signaling = stack
        with pytest.raises(FlowEstablishmentError) as excinfo:
            signaling.establish(predicted_flow(target_delay=0.01))
        assert "guaranteed" in str(excinfo.value)

    def test_edge_filter_installed_at_first_switch_only(self, stack, sim):
        net, __, signaling = stack
        signaling.establish(predicted_flow())
        first = net.port_for_link("S-1->S-2")
        later = net.port_for_link("S-2->S-3")
        assert len(first.filters) == 1
        assert len(later.filters) == 0
        assert signaling.edge_filter_of("p1") is not None

    def test_edge_filter_drops_nonconforming_burst(self, stack, sim):
        net, __, signaling = stack
        signaling.establish(predicted_flow(bucket_bits=5_000))
        first = net.port_for_link("S-1->S-2")
        drops = []
        first.on_drop.append(lambda packet, now: drops.append(packet))
        # A 10-packet burst against a 5-packet bucket: half must die at the
        # edge.
        for seq in range(10):
            packet = Packet(
                flow_id="p1",
                size_bits=1000,
                created_at=0.0,
                source="Host-1",
                destination="Host-5",
                service_class=ServiceClass.PREDICTED,
                sequence=seq,
            )
            first.enqueue(packet)
        assert len(drops) == 5
        edge = signaling.edge_filter_of("p1")
        assert edge.nonconforming == 5

    def test_edge_filter_ignores_other_flows(self, stack):
        net, __, signaling = stack
        signaling.establish(predicted_flow(bucket_bits=1_000))
        first = net.port_for_link("S-1->S-2")
        other = Packet(
            flow_id="bystander",
            size_bits=1000,
            created_at=0.0,
            source="Host-1",
            destination="Host-5",
            service_class=ServiceClass.DATAGRAM,
        )
        assert first.enqueue(other)

    def test_teardown_removes_edge_filter(self, stack):
        net, __, signaling = stack
        signaling.establish(predicted_flow())
        signaling.teardown("p1")
        assert net.port_for_link("S-1->S-2").filters == []
        assert signaling.edge_filter_of("p1") is None


class TestDatagramEstablishment:
    def test_trivial_grant(self, stack):
        __, __, signaling = stack
        grant = signaling.establish(
            FlowSpec(
                flow_id="d1",
                source="Host-1",
                destination="Host-5",
                spec=DatagramServiceSpec(),
            )
        )
        assert grant.service_class is ServiceClass.DATAGRAM
        assert grant.priority_class is None
        assert grant.advertised_bound_seconds is None


class TestPathValidation:
    def test_same_switch_hosts_have_no_links(self, stack):
        __, __, signaling = stack
        with pytest.raises(FlowEstablishmentError):
            signaling.establish(
                guaranteed_flow("same", src="Host-1", dst="Host-1")
            )
