"""Tests for the Section 2.3 client taxonomy."""

import pytest

from repro.core.taxonomy import (
    Adaptivity,
    Tolerance,
    classify_client,
    recommend_service,
)
from repro.net.packet import ServiceClass


class TestRecommendations:
    def test_intolerant_rigid_gets_guaranteed(self):
        rec = recommend_service(Adaptivity.RIGID, Tolerance.INTOLERANT)
        assert rec.service_class is ServiceClass.GUARANTEED
        assert rec.stable

    def test_tolerant_adaptive_gets_predicted(self):
        rec = recommend_service(Adaptivity.ADAPTIVE, Tolerance.TOLERANT)
        assert rec.service_class is ServiceClass.PREDICTED
        assert rec.stable

    def test_off_diagonals_marked_unstable(self):
        a = recommend_service(Adaptivity.ADAPTIVE, Tolerance.INTOLERANT)
        b = recommend_service(Adaptivity.RIGID, Tolerance.TOLERANT)
        assert not a.stable
        assert not b.stable

    def test_intolerant_adaptive_steered_to_guaranteed(self):
        """The paper: adaptation's own re-adjustment disrupts service, so
        intolerant clients should not adapt."""
        rec = recommend_service(Adaptivity.ADAPTIVE, Tolerance.INTOLERANT)
        assert rec.service_class is ServiceClass.GUARANTEED

    def test_tolerant_rigid_can_ride_predicted(self):
        rec = recommend_service(Adaptivity.RIGID, Tolerance.TOLERANT)
        assert rec.service_class is ServiceClass.PREDICTED

    def test_every_corner_has_a_rationale(self):
        for adaptivity in Adaptivity:
            for tolerance in Tolerance:
                rec = recommend_service(adaptivity, tolerance)
                assert len(rec.rationale) > 20

    def test_no_corner_recommends_datagram(self):
        """Real-time clients always get a real-time commitment."""
        for adaptivity in Adaptivity:
            for tolerance in Tolerance:
                rec = recommend_service(adaptivity, tolerance)
                assert rec.service_class.is_realtime


class TestClassify:
    @pytest.mark.parametrize(
        "moves,survives,expected",
        [
            (True, True, (Adaptivity.ADAPTIVE, Tolerance.TOLERANT)),
            (False, False, (Adaptivity.RIGID, Tolerance.INTOLERANT)),
            (True, False, (Adaptivity.ADAPTIVE, Tolerance.INTOLERANT)),
            (False, True, (Adaptivity.RIGID, Tolerance.TOLERANT)),
        ],
    )
    def test_questions_map_to_axes(self, moves, survives, expected):
        assert classify_client(moves, survives) == expected

    def test_roundtrip_through_recommendation(self):
        axes = classify_client(True, True)
        rec = recommend_service(*axes)
        assert rec.service_class is ServiceClass.PREDICTED
