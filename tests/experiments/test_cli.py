"""Tests for the ``python -m repro.experiments`` command line."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "S-1" in out and "10 each" in out

    def test_table1_short(self, capsys):
        assert main(["table1", "--duration", "20", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "WFQ" in out and "FIFO" in out
        assert "seed: 2" in out

    def test_table2_short(self, capsys):
        assert main(["table2", "--duration", "20"]) == 0
        out = capsys.readouterr().out
        assert "FIFO+" in out

    def test_table3_short(self, capsys):
        assert main(["table3", "--duration", "20"]) == 0
        out = capsys.readouterr().out
        assert "P-G bound" in out
        assert "datagram drop rate" in out

    def test_dynamics_short(self, capsys):
        assert main(["dynamics", "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "adaptations" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_all_runs_everything(self, capsys):
        assert main(["all", "--duration", "15"]) == 0
        out = capsys.readouterr().out
        for token in ("Table 1", "Table 2", "Table 3", "Figure 1",
                      "Dynamic adaptation"):
            assert token in out
