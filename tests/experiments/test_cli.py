"""Tests for the ``python -m repro.experiments`` command line."""

import pytest

from repro.experiments.__main__ import main


class TestCli:
    def test_fig1(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "S-1" in out and "10 each" in out

    def test_table1_short(self, capsys):
        assert main(["table1", "--duration", "20", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "WFQ" in out and "FIFO" in out
        assert "seed: 2" in out

    def test_table2_short(self, capsys):
        assert main(["table2", "--duration", "20"]) == 0
        out = capsys.readouterr().out
        assert "FIFO+" in out

    def test_table3_short(self, capsys):
        assert main(["table3", "--duration", "20"]) == 0
        out = capsys.readouterr().out
        assert "P-G bound" in out
        assert "datagram drop rate" in out

    def test_dynamics_short(self, capsys):
        assert main(["dynamics", "--duration", "30"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "adaptations" in out

    def test_parkinglot_short(self, capsys):
        assert main(["parkinglot", "--duration", "15"]) == 0
        out = capsys.readouterr().out
        assert "Parking lot" in out and "thru" in out
        assert "FIFO+" in out and "CSZ" in out

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["table9"])

    def test_no_experiment_and_no_spec_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_experiment_and_spec_mutually_exclusive(self):
        with pytest.raises(SystemExit):
            main(["table1", "--spec", "parking_lot"])


class TestSpecCli:
    def test_registered_name(self, capsys):
        assert main(["--spec", "table1", "--duration", "10"]) == 0
        out = capsys.readouterr().out
        assert "flow-0" in out and "A->B" in out

    def test_unknown_name_reports_error(self, capsys):
        assert main(["--spec", "no-such-scenario"]) == 2
        assert "no scenario named" in capsys.readouterr().err

    def test_spec_file_round_trip(self, capsys, tmp_path):
        import json

        from repro.scenario import registry

        spec = registry.build("parking_lot", duration=5.0)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        out_path = tmp_path / "out.json"
        assert main(["--spec", str(path), "--json", str(out_path)]) == 0
        out = capsys.readouterr().out
        assert "thru-0" in out
        payload = json.loads(out_path.read_text())
        runs = payload["experiments"]["parking_lot"]["runs"]
        assert [run["discipline"] for run in runs] == ["FIFO", "FIFO+", "CSZ"]
        assert "S-1->S-2" in runs[0]["link_queueing"]

    def test_spec_file_duration_override(self, capsys, tmp_path):
        import json

        from repro.scenario import registry

        spec = registry.build("table1", duration=600.0)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert main(["--spec", str(path), "--duration", "5"]) == 0
        assert "duration: 5s" in capsys.readouterr().out

    def test_list_scenarios(self, capsys):
        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "parking_lot" in out and "table1" in out

    def test_json_export(self, capsys, tmp_path):
        path = tmp_path / "results.json"
        assert main(["table1", "--duration", "15", "--json", str(path)]) == 0
        assert str(path) in capsys.readouterr().out
        import json

        payload = json.loads(path.read_text())
        runs = payload["experiments"]["table1"]["runs"]
        assert [run["discipline"] for run in runs] == ["WFQ", "FIFO"]
        assert "flow-0" in runs[0]["flows"]
        assert runs[0]["flows"]["flow-0"]["recorded"] > 0

    def test_workers_flag_matches_serial(self, capsys, tmp_path):
        serial, parallel = tmp_path / "serial.json", tmp_path / "parallel.json"
        assert main(["table1", "--duration", "15", "--json", str(serial)]) == 0
        assert (
            main(
                [
                    "table1",
                    "--duration",
                    "15",
                    "--workers",
                    "2",
                    "--json",
                    str(parallel),
                ]
            )
            == 0
        )
        capsys.readouterr()
        import json

        def comparable(path):
            runs = json.loads(path.read_text())["experiments"]["table1"]["runs"]
            for run in runs:
                del run["runtime"]
            return runs

        assert comparable(serial) == comparable(parallel)

class TestSweepCli:
    def test_seed_range_sweep(self, capsys, tmp_path):
        import json

        path = tmp_path / "sweep.json"
        assert (
            main(
                ["--spec", "table1", "--duration", "5",
                 "--sweep-seeds", "1..3", "--json", str(path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[3/3]" in out and "3 completed" in out
        payload = json.loads(path.read_text())["experiments"]["table1"]
        assert payload["counts"]["completed"] == 3
        assert [run["seed"] for run in payload["runs"]] == [1, 2, 3]
        assert all(run["status"] == "completed" for run in payload["runs"])

    def test_sweep_over_cross_product(self, capsys):
        assert (
            main(
                ["--spec", "table1", "--duration", "5",
                 "--sweep-seeds", "1,2", "--sweep-over", "warmup=0,1"]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "[4/4]" in out and "4 completed" in out

    def test_budget_marks_runs_expired(self, capsys):
        assert (
            main(
                ["--spec", "table1", "--duration", "5",
                 "--sweep-seeds", "1,2", "--budget-seconds", "0"]
            )
            == 0
        )
        assert "2 budget-expired" in capsys.readouterr().out

    def test_sweep_flags_require_spec(self):
        with pytest.raises(SystemExit):
            main(["table1", "--sweep-seeds", "1..2"])

    def test_malformed_sweep_over_reports_error(self, capsys):
        assert (
            main(["--spec", "table1", "--sweep-over", "warmup"]) == 2
        )
        assert "field=v1,v2" in capsys.readouterr().err

    def test_valueless_sweep_over_reports_error(self, capsys):
        assert (
            main(["--spec", "table1", "--sweep-over", "warmup="]) == 2
        )
        assert "names no values" in capsys.readouterr().err

    def test_unknown_sweep_field_reports_error(self, capsys):
        assert (
            main(["--spec", "table1", "--sweep-over", "no_such_field=1"]) == 2
        )
        assert "error:" in capsys.readouterr().err


class TestGeneratedCli:
    def test_gen_spec_with_gen_seed_runs_validated(self, capsys, tmp_path):
        import json

        path = tmp_path / "gen.json"
        assert (
            main(
                ["--spec", "gen:random-graph", "--gen-seed", "7",
                 "--duration", "4", "--json", str(path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "random-graph-g7" in out
        assert "port-conservation" in out and "FAIL" not in out
        runs = json.loads(path.read_text())["experiments"][
            "random-graph-g7"
        ]["runs"]
        assert [run["discipline"] for run in runs] == ["FIFO", "FIFO+", "CSZ"]
        for run in runs:
            assert all(check["ok"] for check in run["invariants"])

    def test_gen_seed_changes_the_scenario(self, capsys):
        assert main(["--spec", "gen:access-core", "--gen-seed", "3",
                     "--duration", "3"]) == 0
        assert "access-core-g3" in capsys.readouterr().out

    def test_gen_scenarios_listed(self, capsys):
        assert main(["--list-scenarios"]) == 0
        out = capsys.readouterr().out
        assert "gen:random-graph" in out and "gen:wan-path" in out

    def test_validate_flag_opts_any_spec_in(self, capsys):
        assert main(["--spec", "table1", "--duration", "4",
                     "--validate"]) == 0
        out = capsys.readouterr().out
        assert "invariant" in out and "flow-conservation" in out

    def test_gen_spec_sweeps_seeds(self, capsys):
        assert (
            main(
                ["--spec", "gen:wan-path", "--gen-seed", "2",
                 "--duration", "3", "--sweep-seeds", "1,2"]
            )
            == 0
        )
        assert "2 completed" in capsys.readouterr().out

    def test_generated_experiment_with_gen_seeds(self, capsys, tmp_path):
        import json

        path = tmp_path / "generated.json"
        assert (
            main(
                ["generated", "--duration", "3", "--gen-seeds", "1..3",
                 "--workers", "2", "--json", str(path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "3 seeded multi-bottleneck topologies" in out
        assert "clean on every run" in out
        payload = json.loads(path.read_text())["experiments"]["generated"]
        assert [row["gen_seed"] for row in payload["rows"]] == [1, 2, 3]
        assert payload["all_invariants_clean"] is True

    def test_gen_seeds_requires_generated_experiment(self):
        with pytest.raises(SystemExit):
            main(["table1", "--gen-seeds", "1..3"])

    def test_gen_seed_requires_spec(self):
        with pytest.raises(SystemExit):
            main(["generated", "--gen-seed", "5"])

    def test_validate_requires_spec(self):
        with pytest.raises(SystemExit):
            main(["table1", "--validate"])

    def test_malformed_gen_seeds_reports_error(self, capsys):
        assert main(["generated", "--gen-seeds", "5..2"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_violations_flip_exit_code_but_json_still_written(
        self, capsys, tmp_path, monkeypatch
    ):
        from repro.scenario.runner import DisciplineRunResult

        monkeypatch.setattr(
            DisciplineRunResult,
            "invariants_clean",
            property(lambda self: False),
        )
        path = tmp_path / "violated.json"
        assert (
            main(
                ["--spec", "gen:access-core", "--gen-seed", "1",
                 "--duration", "2", "--json", str(path)]
            )
            == 1
        )
        assert "invariant violations" in capsys.readouterr().err
        # The payload survives: it is the debugging artifact.
        import json

        assert path.exists()
        assert "experiments" in json.loads(path.read_text())

    def test_sweep_mode_checks_invariants_too(self, capsys, monkeypatch):
        from repro.scenario.runner import DisciplineRunResult

        monkeypatch.setattr(
            DisciplineRunResult,
            "invariants_clean",
            property(lambda self: False),
        )
        assert (
            main(
                ["--spec", "gen:access-core", "--gen-seed", "1",
                 "--duration", "2", "--sweep-seeds", "1,2"]
            )
            == 1
        )
        assert "invariant violations" in capsys.readouterr().err


class TestCliAll:
    def test_all_runs_everything(self, capsys):
        assert main(["all", "--duration", "15", "--gen-seeds", "1,2"]) == 0
        out = capsys.readouterr().out
        for token in ("Table 1", "Table 2", "Table 3", "Figure 1",
                      "Dynamic adaptation",
                      "seeded multi-bottleneck topologies"):
            assert token in out


class TestEngineCli:
    def test_engine_fluid_on_registered_spec(self, capsys):
        assert (
            main(
                ["--spec", "gen:fat-tree", "--engine", "fluid",
                 "--duration", "5"]
            )
            == 0
        )
        assert "fat-tree-k4-g1" in capsys.readouterr().out

    def test_engine_fluid_on_spec_file(self, capsys, tmp_path):
        import json

        from repro.scenario import registry

        spec = registry.build("parking_lot", duration=5.0)
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert main(["--spec", str(path), "--engine", "fluid"]) == 0
        capsys.readouterr()

    def test_engine_requires_spec(self):
        with pytest.raises(SystemExit):
            main(["table1", "--engine", "fluid"])

    def test_scale_experiment_runs_small(self, capsys, monkeypatch):
        from repro.experiments import scale

        monkeypatch.setattr(scale, "DEFAULT_SIZES", (300,))
        assert main(["scale", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "Scale flagship" in out
        assert "admit" in out
