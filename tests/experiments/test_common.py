"""Tests for the shared experiment recipes (the Appendix constants)."""

import pytest

from repro.experiments import common


class TestConstants:
    def test_paper_units(self):
        assert common.PACKET_BITS == 1000
        assert common.LINK_RATE_BPS == 1_000_000
        assert common.TX_TIME_SECONDS == pytest.approx(0.001)
        assert common.BUFFER_PACKETS == 200
        assert common.AVERAGE_RATE_PPS == 85.0
        assert common.BUCKET_PACKETS == 50.0
        assert common.PAPER_DURATION_SECONDS == 600.0

    def test_in_tx_units(self):
        assert common.in_tx_units(0.001) == pytest.approx(1.0)
        assert common.in_tx_units(0.0545) == pytest.approx(54.5)


class TestFlowPlacements:
    def test_twenty_two_flows(self):
        assert len(common.figure1_flow_placements()) == 22

    def test_names_unique(self):
        names = [p.name for p in common.figure1_flow_placements()]
        assert len(set(names)) == 22

    def test_hops_match_endpoints(self):
        for placement in common.figure1_flow_placements():
            src = int(placement.source_host.split("-")[1])
            dst = int(placement.dest_host.split("-")[1])
            assert placement.hops == dst - src
            assert 1 <= placement.hops <= 4

    def test_table3_commitment_census_per_link(self):
        """Every inter-switch link carries exactly 2 G-Peak + 1 G-Avg +
        3 P-High + 4 P-Low flows (the paper's stated per-link census)."""
        placements = {p.name: p for p in common.figure1_flow_placements()}

        def links_of(placement):
            src = int(placement.source_host.split("-")[1])
            dst = int(placement.dest_host.split("-")[1])
            return set(range(src, dst))  # link i joins S-i and S-(i+1)

        census = {link: {"peak": 0, "avg": 0, "high": 0, "low": 0}
                  for link in range(1, 5)}
        groups = [
            (common.GUARANTEED_PEAK_FLOWS, "peak"),
            (common.GUARANTEED_AVERAGE_FLOWS, "avg"),
            (common.PREDICTED_HIGH_FLOWS, "high"),
            (common.PREDICTED_LOW_FLOWS, "low"),
        ]
        seen = set()
        for flows, kind in groups:
            for name in flows:
                assert name not in seen, f"{name} assigned twice"
                seen.add(name)
                for link in links_of(placements[name]):
                    census[link][kind] += 1
        assert seen == set(placements)
        for link, counts in census.items():
            assert counts == {"peak": 2, "avg": 1, "high": 3, "low": 4}, link

    def test_table3_samples_exist_and_typed_right(self):
        placements = {p.name: p for p in common.figure1_flow_placements()}
        for flow_type, flow, hops in common.TABLE3_SAMPLES:
            assert placements[flow].hops == hops
            group = {
                "Peak": common.GUARANTEED_PEAK_FLOWS,
                "Average": common.GUARANTEED_AVERAGE_FLOWS,
                "High": common.PREDICTED_HIGH_FLOWS,
                "Low": common.PREDICTED_LOW_FLOWS,
            }[flow_type]
            assert flow in group


class TestFormatTable:
    def test_alignment_and_rule(self):
        text = common.format_table(
            ["name", "value"], [["a", "1"], ["bb", "22"]]
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert set(lines[1]) <= {"-", " "}
        # All rows share a width.
        assert len({len(line) for line in lines}) == 1

    def test_wide_cells_stretch_columns(self):
        text = common.format_table(["h"], [["wider-than-header"]])
        assert "wider-than-header" in text
