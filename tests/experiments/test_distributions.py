"""Tests for the delay-distribution view of the Table-1 comparison."""

import pytest

from repro.experiments import distributions

DURATION = 45.0


@pytest.fixture(scope="module")
def result():
    return distributions.run(duration=DURATION, seed=1)


class TestDistributionsShape:
    def test_percentiles_monotone(self, result):
        for row in result.rows:
            values = [row.percentiles[p] for p in distributions.CDF_POINTS]
            assert values == sorted(values)

    def test_fifo_tail_beats_wfq_beyond_p99(self, result):
        wfq = result.row("WFQ")
        fifo = result.row("FIFO")
        assert fifo.percentiles[99.9] < wfq.percentiles[99.9]
        assert fifo.percentiles[99.99] < wfq.percentiles[99.99]

    def test_medians_comparable(self, result):
        wfq = result.row("WFQ").percentiles[50.0]
        fifo = result.row("FIFO").percentiles[50.0]
        assert abs(wfq - fifo) / max(wfq, fifo) < 0.2

    def test_fifo_tail_fairness_at_least_wfqs(self, result):
        """§5: FIFO spreads jitter evenly across homogeneous flows."""
        assert result.row("FIFO").tail_fairness >= result.row("WFQ").tail_fairness
        assert result.row("FIFO").tail_fairness > 0.95

    def test_render_contains_bars_and_table(self, result):
        text = result.render()
        assert "p99.9" in text
        assert "|#" in text
        assert "tail fairness" in text

    def test_unknown_row(self, result):
        with pytest.raises(KeyError):
            result.row("LIFO")
