"""Shape tests for the dynamic-adaptation experiment."""

import pytest

from repro.experiments import dynamics

PHASE = 40.0


@pytest.fixture(scope="module")
def result():
    return dynamics.run(phase_seconds=PHASE, seed=1)


class TestDynamicsShape:
    def test_three_phases_recorded(self, result):
        assert [p.name for p in result.phases] == ["A", "B", "C"]

    def test_all_phases_carried_traffic(self, result):
        for phase in result.phases:
            assert phase.received > 1000, phase.name

    def test_loss_burst_concentrates_in_phase_b(self, result):
        """Section 3: a delay increase causes a brief degradation while the
        client re-adapts; the settled phases lose (much) less."""
        a = result.phase("A").loss_rate
        b = result.phase("B").loss_rate
        c = result.phase("C").loss_rate
        assert b > a
        assert b > c

    def test_settled_losses_near_target(self, result):
        """Outside transitions, the 1 % loss target is roughly honoured."""
        assert result.phase("C").loss_rate < 0.03

    def test_offset_tracks_load_up_and_down(self, result):
        before = result.offset_at(0.9 * PHASE)
        loaded = result.offset_at(1.9 * PHASE)
        after = result.offset_at(2.9 * PHASE)
        assert loaded > 1.5 * before
        assert after < 0.5 * loaded

    def test_client_keeps_adapting(self, result):
        assert result.adaptations > 10

    def test_offset_history_monotone_times(self, result):
        times = [t for t, __ in result.offset_history]
        assert times == sorted(times)

    def test_render(self, result):
        text = result.render()
        for token in ("phase", "loss", "mean offset", "adaptations"):
            assert token in text

    def test_phase_lookup_unknown(self, result):
        with pytest.raises(KeyError):
            result.phase("D")


class TestDeterminism:
    def test_same_seed_same_history(self):
        a = dynamics.run(phase_seconds=10.0, seed=9)
        b = dynamics.run(phase_seconds=10.0, seed=9)
        assert a.offset_history == b.offset_history
        assert [p.received for p in a.phases] == [p.received for p in b.phases]
