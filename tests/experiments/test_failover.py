"""Failover flagship: pinned regression + the control-plane story.

The golden under ``data/`` was captured from this experiment at seed 2 /
40 s (a seed whose failure instant catches a packet mid-wire, so the
ledgered wire kill is part of the pinned payload).  Exact equality pins
the whole stack: the outage schedule, the in-flight kill, SPF
reconvergence, re-admission through signaling, and the phase-bucketed
delay accounting.
"""

import json
import pathlib

import pytest

from repro.experiments import failover
from repro.scenario import ScenarioSpec

DATA = pathlib.Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def result():
    return failover.run(duration=40.0, seed=2, warmup=2.0)


@pytest.fixture(scope="module")
def golden():
    with open(DATA / "golden_failover_seed2.json") as handle:
        return json.load(handle)


class TestPinnedRegression:
    def test_payload_bit_identical(self, result, golden):
        assert result.to_dict() == golden


class TestControlPlaneStory:
    def test_invariants_clean_through_the_failover(self, result):
        """Conservation and route-liveness hold across both reroutes."""
        for row in result.rows:
            assert row.invariants_clean
        for run in result.scenario.runs:
            assert all(check.ok for check in run.invariants)

    def test_wire_kill_is_ledgered_not_lost(self, result):
        """The packet mid-flight at the failure instant is accounted as a
        failure drop — conservation closes (previous test) *with* it."""
        for row in result.rows:
            assert row.wire_killed == 1

    def test_outage_schedule_is_paired_across_disciplines(self, result):
        fifo, csz = result.rows
        assert fifo.phase_packets == csz.phase_packets
        assert fifo.delivered == csz.delivered
        assert fifo.wire_killed == csz.wire_killed
        assert fifo.reroutes == csz.reroutes

    def test_every_flow_reroutes_out_and_back(self, result):
        """7 flows x 2 route changes (failover + restore)."""
        for row in result.rows:
            assert row.reroutes == 14
        for run in result.scenario.runs:
            assert not any(flow.torn_down for flow in run.control.flows)

    def test_predicted_flows_readmitted_on_both_transitions(self, result):
        for row in result.rows:
            assert row.readmissions == 2 * len(failover.PREDICTED_FLOWS)

    def test_csz_keeps_jitter_below_fifo_in_every_phase(self, result):
        """The paper's predicted-service claim survives the failover."""
        fifo = result.row("FIFO")
        csz = result.row("CSZ")
        for phase in failover.PHASES:
            assert csz.phase_jitter[phase] < 0.8 * fifo.phase_jitter[phase]
            assert csz.phase_mean[phase] < fifo.phase_mean[phase]

    def test_all_phases_observed_traffic(self, result):
        for row in result.rows:
            for phase in failover.PHASES:
                assert row.phase_packets[phase] > 100


class TestSpecPlumbing:
    def test_spec_round_trips_through_json(self):
        spec = failover.scenario_spec(duration=5.0)
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec

    def test_registry_builds_the_same_spec(self):
        from repro.scenario import registry

        assert registry.build(
            "failover", duration=5.0, seed=3
        ) == failover.scenario_spec(duration=5.0, seed=3)

    def test_runs_through_the_cli(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["failover", "--duration", "6", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "Failover" in out
        assert "invariants: FIFO=clean, CSZ=clean" in out
