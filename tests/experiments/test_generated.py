"""Flagship golden: FIFO+'s jitter ranking across 20 generated graphs.

The golden file was captured at duration 6 s / warmup 1 s / seed 1 over
generator seeds 1..20 (the flagship defaults).  Every per-graph jitter
number is pinned bit-for-bit — generation, routing, flow sizing, and the
paired simulations are all deterministic — and the aggregate pins the
architectural claim: FIFO+ ranks best on jitter across sampled
multi-bottleneck topologies, with every invariant clean on every run.
"""

import json
import pathlib

import pytest

from repro.experiments import generated

DATA = pathlib.Path(__file__).parent / "data"
DURATION = 6.0
WARMUP = 1.0


@pytest.fixture(scope="module")
def golden():
    with open(DATA / "golden_generated_seed1.json") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def result():
    return generated.run(duration=DURATION, warmup=WARMUP, seed=1, workers=2)


class TestGeneratedGolden:
    def test_twenty_graphs(self, result):
        assert [row.gen_seed for row in result.rows] == list(range(1, 21))

    def test_rows_bit_identical(self, result, golden):
        for row, expected in zip(result.rows, golden["rows"]):
            assert row.gen_seed == expected["gen_seed"]
            assert row.num_flows == expected["num_flows"]
            assert row.num_multihop == expected["num_multihop"]
            assert row.num_links == expected["num_links"]
            assert row.jitter_ms == expected["jitter_ms"]

    def test_jitter_ranking_pinned(self, result, golden):
        """The per-graph winner list is the golden's, exactly."""
        assert [row.winner for row in result.rows] == [
            row["winner"] for row in golden["rows"]
        ]
        assert result.wins == golden["wins"]

    def test_fifoplus_ranks_best_on_jitter(self, result):
        """The architectural claim across sampled topologies: FIFO+ wins
        more graphs than any alternative and has the lowest mean
        multi-hop jitter."""
        wins = result.wins
        assert wins["FIFO+"] == max(wins.values())
        means = result.mean_jitter_ms
        assert means["FIFO+"] < means["FIFO"]
        assert means["FIFO+"] == min(means.values())

    def test_invariants_clean_on_every_run(self, result):
        assert result.all_invariants_clean
        assert all(row.invariants_clean for row in result.rows)

    def test_mean_jitter_bit_identical(self, result, golden):
        assert result.mean_jitter_ms == golden["mean_jitter_ms"]

    def test_render_mentions_the_verdict(self, result):
        out = result.render()
        assert "20 seeded multi-bottleneck topologies" in out
        assert "clean on every run" in out
        assert "FIFO+" in out
