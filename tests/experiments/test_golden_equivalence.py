"""Legacy-equivalence goldens: the scenario-founded experiment wrappers
reproduce the pre-refactor implementation bit for bit at the same seed.

The JSON files under ``data/`` were captured from the hand-wired
implementations (before the experiments were re-founded on
:mod:`repro.scenario`) at seed 1 / 60 s (tables), seed 1 / 30 s
(distributions), and seed 9 / 10 s-phases (dynamics).  Every comparison
below is exact float equality — paired arrivals, scheduling, utilization
accounting, admission decisions, and TCP dynamics all have to match.
"""

import json
import pathlib

import pytest

from repro.experiments import distributions, dynamics, table1, table2, table3

DATA = pathlib.Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def golden():
    with open(DATA / "golden_seed1_pre_scenario.json") as handle:
        return json.load(handle)


class TestTable1Golden:
    @pytest.fixture(scope="class")
    def result(self):
        return table1.run(duration=60.0, seed=1)

    def test_rows_bit_identical(self, result, golden):
        for row in result.rows:
            expected = golden["table1"]["rows"][row.scheduling]
            assert row.mean == expected["mean"]
            assert row.p999 == expected["p999"]
            assert row.flow_means == expected["flow_means"]
            assert row.flow_p999s == expected["flow_p999s"]

    def test_utilization_bit_identical(self, result, golden):
        """The deduplicated measurement (from the FIFO run, not a third
        dedicated simulation) equals the legacy third-run value exactly."""
        assert result.utilization == golden["table1"]["utilization"]


class TestTable2Golden:
    @pytest.fixture(scope="class")
    def result(self):
        return table2.run(duration=60.0, seed=1)

    def test_rows_bit_identical(self, result, golden):
        for row in result.rows:
            expected = golden["table2"]["rows"][row.scheduling]
            got = {
                str(hops): [cell.mean, cell.p999]
                for hops, cell in row.by_hops.items()
            }
            assert got == expected["by_hops"]
            assert row.all_means == expected["all_means"]
            assert row.all_p999s == expected["all_p999s"]

    def test_utilizations_bit_identical(self, result, golden):
        assert result.link_utilizations == golden["table2"]["link_utilizations"]


class TestTable3Golden:
    @pytest.fixture(scope="class")
    def result(self):
        return table3.run(duration=60.0, seed=1)

    def test_sample_rows_bit_identical(self, result, golden):
        rows = [
            {
                "flow_type": row.flow_type,
                "flow": row.flow,
                "hops": row.hops,
                "mean": row.mean,
                "p999": row.p999,
                "max": row.max,
                "pg_bound": row.pg_bound,
            }
            for row in result.rows
        ]
        assert rows == golden["table3"]["rows"]

    def test_bounds_and_maxima_bit_identical(self, result, golden):
        assert result.all_max_by_flow == golden["table3"]["all_max_by_flow"]
        assert result.pg_bound_by_flow == golden["table3"]["pg_bound_by_flow"]

    def test_accounting_bit_identical(self, result, golden):
        expected = golden["table3"]
        assert result.link_utilizations == expected["link_utilizations"]
        assert result.realtime_fraction == expected["realtime_fraction"]
        assert result.datagram_sent == expected["datagram_sent"]
        assert result.datagram_dropped == expected["datagram_dropped"]
        assert result.tcp_goodput_bps == expected["tcp_goodput_bps"]


class TestDistributionsGolden:
    def test_full_cdf_bit_identical(self, golden):
        result = distributions.run(duration=30.0, seed=1)
        for row in result.rows:
            expected = golden["distributions"][row.scheduling]
            got = {str(pct): value for pct, value in row.percentiles.items()}
            assert got == expected["percentiles"]
            assert row.flow_p999s == expected["flow_p999s"]


class TestDynamicsGolden:
    def test_orchestrated_run_bit_identical(self):
        """Mid-run admission via the live ScenarioContext reproduces the
        hand-wired phase machinery exactly."""
        with open(DATA / "golden_dynamics_seed9_pre_scenario.json") as handle:
            expected = json.load(handle)
        result = dynamics.run(phase_seconds=10.0, seed=9)
        assert [list(e) for e in result.offset_history] == expected["offset_history"]
        assert [p.received for p in result.phases] == expected["received"]
        assert [p.late for p in result.phases] == expected["late"]
        assert [
            p.mean_offset_seconds for p in result.phases
        ] == expected["mean_offsets"]
        assert result.adaptations == expected["adaptations"]
