"""Parking-lot merge scenario: pinned regression + the paper's shape.

The golden under ``data/`` was captured from this experiment at seed 1 /
40 s; exact float equality pins the whole pipeline — graph topology
compile, routing over the merge network, paired arrivals, per-hop
accounting — like the table goldens do for the legacy kinds.
"""

import json
import pathlib

import pytest

from repro.experiments import parkinglot
from repro.scenario import ScenarioRunner

DATA = pathlib.Path(__file__).parent / "data"


@pytest.fixture(scope="module")
def result():
    return parkinglot.run(duration=40.0, seed=1)


@pytest.fixture(scope="module")
def golden():
    with open(DATA / "golden_parkinglot_seed1.json") as handle:
        return json.load(handle)


class TestPinnedRegression:
    def test_rows_bit_identical(self, result, golden):
        assert result.to_dict()["rows"] == golden["rows"]


class TestPaperShape:
    def test_paired_cross_traffic(self, result):
        """Every discipline saw the same per-hop cross arrival process."""
        runs = result.scenario.runs
        witnesses = [f.name for f in runs[0].flows if f.name.startswith("cross")]
        assert len(witnesses) == parkinglot.NUM_HOPS
        for run in runs[1:]:
            for name in witnesses:
                assert run.flow(name).generated == runs[0].flow(name).generated

    def test_all_links_near_paper_load(self, result):
        for row in result.rows:
            for value in row.link_utilizations.values():
                assert 0.78 < value < 0.9

    def test_fifoplus_shrinks_multihop_jitter(self, result):
        """The headline: FIFO+ (and the unified scheduler that embeds it)
        pull the through flows' tail and jitter below FIFO's, at an
        essentially unchanged mean."""
        fifo = result.row("FIFO")
        for name in ("FIFO+", "CSZ"):
            other = result.row(name)
            assert other.jitter < 0.9 * fifo.jitter
            assert other.p999 < 0.9 * fifo.p999
            assert other.mean == pytest.approx(fifo.mean, rel=0.1)

    def test_per_hop_queueing_reported_everywhere(self, result):
        for row in result.rows:
            assert set(row.link_queueing_ms) == {
                f"S-{k}->S-{k + 1}" for k in range(1, parkinglot.NUM_HOPS + 1)
            }
            assert all(v > 0 for v in row.link_queueing_ms.values())


class TestSpecPlumbing:
    def test_spec_round_trips_through_json(self):
        from repro.scenario import ScenarioSpec

        spec = parkinglot.scenario_spec(duration=5.0)
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec

    def test_registry_builds_the_same_spec(self):
        from repro.scenario import registry

        assert registry.build(
            "parking_lot", duration=5.0, seed=3
        ) == parkinglot.scenario_spec(duration=5.0, seed=3)

    def test_topology_is_graph_only(self):
        """The merge network is not expressible as a legacy named kind."""
        spec = parkinglot.scenario_spec(duration=5.0)
        assert spec.topology.kind == "parking_lot"
        assert len(spec.topology.host_attachments) == 2 + 2 * parkinglot.NUM_HOPS

    def test_runs_through_the_spec_cli(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--spec", "parking_lot", "--duration", "5"]) == 0
        out = capsys.readouterr().out
        assert "thru-0" in out
        assert "S-4->S-5" in out
