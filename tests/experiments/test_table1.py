"""Shape tests for the Table 1 reproduction (WFQ vs FIFO, single link).

Short horizons keep the suite fast; the benchmarks run the paper's full
600 s.  The paper's qualitative claims hold well before full convergence.
"""

import pytest

from repro.experiments import table1

DURATION = 60.0


@pytest.fixture(scope="module")
def result():
    return table1.run(duration=DURATION, seed=7)


class TestTable1Shape:
    def test_means_comparable(self, result):
        """Work conservation: WFQ and FIFO means within ~10 % (paper: 3.16
        vs 3.17)."""
        wfq = result.row("WFQ").mean
        fifo = result.row("FIFO").mean
        assert abs(wfq - fifo) / max(wfq, fifo) < 0.10

    def test_fifo_tail_beats_wfq(self, result):
        """The paper's headline: sharing (FIFO) yields a much smaller
        99.9th percentile than isolation (WFQ) for homogeneous sources."""
        wfq = result.row("WFQ").p999
        fifo = result.row("FIFO").p999
        assert fifo < 0.85 * wfq

    def test_utilization_near_paper(self, result):
        # Paper: 83.5 %.  Allow slack for a short horizon.
        assert 0.75 < result.utilization < 0.92

    def test_flows_are_similar(self, result):
        """'The data from the various flows are similar' — no flow's mean
        is wildly off the pack."""
        for row in result.rows:
            mean_of_means = sum(row.flow_means) / len(row.flow_means)
            for value in row.flow_means:
                assert value < 3.0 * mean_of_means

    def test_delays_positive_in_tx_units(self, result):
        for row in result.rows:
            assert row.mean > 0.1  # some real queueing happens at 83.5 %
            assert row.p999 > row.mean


class TestTable1Determinism:
    def test_same_seed_reproduces(self):
        a = table1.run_single("FIFO", duration=10.0, seed=3)
        b = table1.run_single("FIFO", duration=10.0, seed=3)
        assert a.mean == b.mean
        assert a.p999 == b.p999

    def test_different_seed_differs(self):
        a = table1.run_single("FIFO", duration=10.0, seed=3)
        b = table1.run_single("FIFO", duration=10.0, seed=4)
        assert a.mean != b.mean

    def test_render_contains_both_rows(self):
        result = table1.run(duration=20.0, seed=1)
        text = result.render()
        assert "WFQ" in text and "FIFO" in text
        assert "83.5%" in text
