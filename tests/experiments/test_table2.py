"""Shape tests for the Table 2 reproduction (WFQ/FIFO/FIFO+ vs hops)."""

import pytest

from repro.experiments import table2

DURATION = 90.0


@pytest.fixture(scope="module")
def result():
    return table2.run(duration=DURATION, seed=11)


class TestTable2Shape:
    def test_means_grow_with_path_length(self, result):
        for row in result.rows:
            means = [row.by_hops[h].mean for h in (1, 2, 3, 4)]
            assert means == sorted(means)

    def test_means_comparable_across_disciplines(self, result):
        """Per path length, the three disciplines' means agree within ~25 %
        (paper: e.g. 9.64 / 10.33 / 10.11 at 4 hops)."""
        for hops in (1, 2, 3, 4):
            means = [row.by_hops[hops].mean for row in result.rows]
            assert max(means) < 1.25 * min(means)

    def test_tails_grow_with_path_length(self, result):
        for row in result.rows:
            tails = [row.by_hops[h].p999 for h in (1, 2, 3, 4)]
            assert tails[-1] > tails[0]

    def test_fifoplus_flattens_tail_growth(self, result):
        """The paper's Section 6 claim: 99.9 %ile growth from 1 to 4 hops is
        much smaller with FIFO+ than with WFQ."""
        wfq = result.row("WFQ")
        fifoplus = result.row("FIFO+")
        wfq_growth = wfq.by_hops[4].p999 - wfq.by_hops[1].p999
        plus_growth = fifoplus.by_hops[4].p999 - fifoplus.by_hops[1].p999
        assert plus_growth < 0.75 * wfq_growth

    def test_fifoplus_beats_fifo_at_four_hops(self, result):
        fifo = result.row("FIFO").by_hops[4].p999
        plus = result.row("FIFO+").by_hops[4].p999
        assert plus < fifo

    def test_wfq_has_worst_long_path_tail(self, result):
        at4 = {row.scheduling: row.by_hops[4].p999 for row in result.rows}
        assert at4["WFQ"] == max(at4.values())

    def test_links_utilized_near_paper(self, result):
        for name, utilization in result.link_utilizations.items():
            assert 0.70 < utilization < 0.92, name

    def test_flows_of_same_length_similar(self, result):
        """Flows sharing a path length should see similar means."""
        from repro.experiments.common import figure1_flow_placements

        hops_of = {p.name: p.hops for p in figure1_flow_placements()}
        for row in result.rows:
            by_hops = {}
            for flow, mean in row.all_means.items():
                by_hops.setdefault(hops_of[flow], []).append(mean)
            for hops, means in by_hops.items():
                center = sum(means) / len(means)
                for value in means:
                    assert value < 2.5 * center, (row.scheduling, hops)

    def test_render(self, result):
        text = result.render()
        for token in ("WFQ", "FIFO", "FIFO+", "4h 99.9%"):
            assert token in text
