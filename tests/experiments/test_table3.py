"""Shape tests for the Table 3 reproduction (the unified scheduler)."""

import pytest

from repro.experiments import table3

DURATION = 90.0


@pytest.fixture(scope="module")
def result():
    return table3.run(duration=DURATION, seed=5)


class TestGuaranteedShape:
    def test_every_guaranteed_flow_under_pg_bound(self, result):
        """The central guarantee: measured max delay < the P-G bound for
        every guaranteed flow (Table 3's shape criterion (i))."""
        for flow, bound in result.pg_bound_by_flow.items():
            assert result.all_max_by_flow[flow] < bound, flow

    def test_peak_sees_less_delay_than_average(self, result):
        """Clock rate at peak generation rate -> small bursts drain fast;
        rate at average -> the bucket's worth of backlog can build."""
        peak4 = result.row("Peak", 4)
        avg3 = result.row("Average", 3)
        avg1 = result.row("Average", 1)
        assert peak4.mean < avg1.mean
        assert peak4.p999 < avg3.p999

    def test_pg_bounds_match_paper_exactly(self, result):
        expected = {
            ("Peak", 4): 23.53,
            ("Peak", 2): 11.76,
            ("Average", 3): 611.76,
            ("Average", 1): 588.24,
        }
        for (flow_type, hops), bound in expected.items():
            row = result.row(flow_type, hops)
            assert row.pg_bound == pytest.approx(bound, abs=0.01)


class TestPredictedShape:
    def test_high_beats_low(self, result):
        """Priority isolation: the high class's tail sits far below the low
        class's."""
        high4 = result.row("High", 4)
        low3 = result.row("Low", 3)
        low1 = result.row("Low", 1)
        assert high4.p999 < low3.p999
        assert high4.mean < low3.mean
        assert result.row("High", 2).mean < low1.p999

    def test_predicted_rows_have_no_pg_bound(self, result):
        for flow_type in ("High", "Low"):
            for row in result.rows:
                if row.flow_type == flow_type:
                    assert row.pg_bound is None


class TestSystemShape:
    def test_network_highly_utilized(self, result):
        """Paper: >99 % utilization.  Short horizons and TCP ramp-up cost a
        little; demand >90 % on every forward link."""
        for name, utilization in result.link_utilizations.items():
            assert utilization > 0.90, (name, utilization)

    def test_realtime_fraction_near_paper(self, result):
        """83.5 % of the load should be real-time traffic."""
        for name, fraction in result.realtime_fraction.items():
            assert 0.70 < fraction < 0.95, (name, fraction)

    def test_datagram_drop_rate_small(self, result):
        """Paper: ~0.1 % datagram drops.  TCP keeps its load matched to the
        leftovers; assert the drop rate stays within an order of magnitude."""
        assert result.datagram_drop_rate < 0.02

    def test_tcp_makes_progress(self, result):
        for name, goodput in result.tcp_goodput_bps.items():
            assert goodput > 10_000, (name, goodput)

    def test_render(self, result):
        text = result.render()
        for token in ("Peak", "Average", "High", "Low", "P-G bound"):
            assert token in text


class TestSamples:
    def test_all_eight_sample_rows_present(self, result):
        kinds = {(row.flow_type, row.hops) for row in result.rows}
        assert kinds == {
            ("Peak", 4), ("Peak", 2),
            ("Average", 3), ("Average", 1),
            ("High", 4), ("High", 2),
            ("Low", 3), ("Low", 1),
        }
