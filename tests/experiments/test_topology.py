"""Tests for the Figure-1 topology report (the paper's only figure)."""

from repro.experiments import topology


class TestFigure1Report:
    def test_structure(self):
        report = topology.build_report()
        assert report.switches == ["S-1", "S-2", "S-3", "S-4", "S-5"]
        assert report.hosts == [f"Host-{i}" for i in range(1, 6)]
        assert len(report.links) == 4

    def test_every_link_carries_ten_flows(self):
        report = topology.build_report()
        assert set(report.flows_per_link.values()) == {10}

    def test_path_length_census_matches_appendix(self):
        report = topology.build_report()
        assert report.flows_per_path_length == {1: 12, 2: 4, 3: 4, 4: 2}

    def test_render_mentions_topology(self):
        text = topology.run().render()
        assert "S-1" in text and "Host-5" in text
        assert "10 each" in text
