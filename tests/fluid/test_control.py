"""Fluid control plane: fail-heal conservation, restore identity,
paired outage draws, no-route shedding, accounted teardowns.

The property grid here is the fluid twin of the packet engine's reroute
invariants: across {FIFO, WFQ, CSZ} x {numpy, pure} a fail-heal run
must balance *generated = delivered + backlog + dropped +
failure_drops* per flow, the two backends must agree bit-for-bit on
both traffic and control counters, and a restore must hand every flow
back its exact original route (object identity for the interned base
state, value identity for the paths).
"""

import dataclasses

import pytest

from repro.control import compute_outage_schedule
from repro.fluid import FluidOptions, FluidSimulation
from repro.fluid import model as fluid_model
from repro.scenario import (
    DisciplineSpec,
    ScenarioBuilder,
    registry,
)
from repro.scenario.runner import OUTAGE_STREAM_NAME
from repro.scenario.spec import (
    GuaranteedRequest,
    OutageEvent,
    OutageSpec,
    TopologySpec,
)
from repro.sim.randomness import RandomStreams

BACKENDS = (
    pytest.param("numpy", marks=pytest.mark.skipif(
        fluid_model._np is None, reason="numpy not installed"
    )),
    "pure",
)

#: Primary path S-A->S-B->S-C (SPF tie-break), backup via S-D.
PRIMARY = "S-A->S-B"
BACKUP = "S-A->S-D"


def diamond_topology(primary_bps=None, backup_bps=None):
    link = lambda src, dst, bps: (
        {"src": src, "dst": dst}
        if bps is None else {"src": src, "dst": dst, "rate_bps": bps}
    )
    return TopologySpec.graph(
        nodes=("S-A", "S-B", "S-C", "S-D"),
        links=[
            link("S-A", "S-B", primary_bps),
            link("S-B", "S-C", primary_bps),
            link("S-A", "S-D", backup_bps),
            link("S-D", "S-C", backup_bps),
        ],
        host_attachments=(("h-src", "S-A"), ("h-dst", "S-C")),
    )


def diamond_spec(disciplines, outages, flows=4, rate_pps=400):
    """A congested diamond: 4x400 pps onto a 1000 pkt/s bottleneck, so
    real backlog exists to flush when the primary path dies."""
    builder = (
        ScenarioBuilder("fluid-ctl")
        .topology(diamond_topology())
        .duration(20.0)
        .warmup(0.0)
        .seed(1)
        .validate()
    )
    for i in range(flows):
        builder.add_flow(
            f"f{i}", "h-src", "h-dst",
            average_rate_pps=rate_pps, peak_rate_pps=rate_pps,
            record=True,
        )
    builder.disciplines(*disciplines)
    spec = builder.build().replace(engine="fluid")
    return dataclasses.replace(spec, outages=OutageSpec(events=outages))


FAIL_HEAL = (OutageEvent(link=PRIMARY, at=8.0, duration=6.0),)
ALL_DISCIPLINES = (
    DisciplineSpec.fifo(),
    DisciplineSpec.wfq(equal_share_flows=4),
    DisciplineSpec.unified(name="CSZ"),
)


def discipline_of(spec, name):
    return next(d for d in spec.disciplines if d.name == name)


class TestFailHealConservation:
    """generated = delivered + backlog + dropped + failure_drops, per
    flow, for every discipline x backend cell of the grid."""

    @pytest.fixture(scope="class")
    def spec(self):
        return diamond_spec(ALL_DISCIPLINES, FAIL_HEAL)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("discipline", ["FIFO", "WFQ", "CSZ"])
    def test_conservation_closes(self, spec, discipline, backend):
        sim = FluidSimulation(
            spec, discipline_of(spec, discipline),
            FluidOptions(backend=backend),
        )
        run = sim.run().collect()
        assert run.invariants is not None and run.invariants_clean
        for f in range(len(sim.flow_names)):
            acc = (
                sim.delivered_bits[f]
                + sim.backlog_bits[f]
                + sim.dropped_bits[f]
                + sim.failure_drop_bits[f]
            )
            assert acc == pytest.approx(
                sim.generated_bits[f], rel=1e-9, abs=1.0
            )
        # The failure actually bit: backlogged bits were flushed.
        assert sum(sim.failure_drop_bits) > 0
        assert sim.flushed_packets > 0
        # Control counters are packet-shaped and complete.
        ctl = run.control
        assert ctl is not None
        assert (ctl.outages, ctl.restores, ctl.recomputes) == (1, 1, 2)
        assert ctl.wire_killed == ()
        for flow in ctl.flows:
            assert flow.reroutes == 2  # fail-over + fail-back
            assert not flow.torn_down

    @pytest.mark.skipif(
        fluid_model._np is None, reason="numpy not installed"
    )
    @pytest.mark.parametrize("discipline", ["FIFO", "WFQ", "CSZ"])
    def test_backends_agree(self, spec, discipline):
        runs = {}
        for backend in ("numpy", "pure"):
            sim = FluidSimulation(
                spec, discipline_of(spec, discipline),
                FluidOptions(backend=backend),
            )
            runs[backend] = (sim, sim.run().collect())
        np_sim, np_run = runs["numpy"]
        py_sim, py_run = runs["pure"]
        py_flows = {f.name: f for f in py_run.flows}
        for f in np_run.flows:
            assert f.received == pytest.approx(
                py_flows[f.name].received, rel=1e-9, abs=1e-6
            )
        for f in range(len(np_sim.flow_names)):
            assert np_sim.failure_drop_bits[f] == pytest.approx(
                py_sim.failure_drop_bits[f], rel=1e-9, abs=1e-6
            )
        # Discrete control summaries are bit-identical dataclasses.
        assert np_run.control == py_run.control


class TestRestoreIdentity:
    """A restore must return the *original* routes — the plan hands
    back the interned base state, not a recomputed equivalent."""

    def test_restore_state_is_base_state(self):
        spec = diamond_spec((DisciplineSpec.fifo(),), FAIL_HEAL)
        sim = FluidSimulation(spec, spec.disciplines[0])
        plan = sim.control_plan
        assert plan is not None and len(plan.boundaries) == 2
        # During the outage the flows actually moved...
        moved = plan.boundaries[0].state
        assert moved is not plan.base_state
        assert any(
            moved.paths[f] != plan.base_state.paths[f]
            for f in range(len(sim.flow_names))
        )
        # ...and the heal is the base state by identity: bit-identical
        # paths, shared fair/weight vectors, zero recomputation.
        healed = plan.boundaries[1].state
        assert healed is plan.base_state
        assert healed.paths is sim.paths

    def test_ecmp_restore_bit_identical(self):
        # Best-effort only: admission refusals would tear flows down and
        # the healed state would (correctly) not be the base state.
        spec = registry.build(
            "gen:leaf-spine",
            gen_seed=1,
            duration=10.0,
            with_requests=False,
            engine="fluid",
        )
        outage = dataclasses.replace(
            spec,
            outages=OutageSpec(
                events=(
                    OutageEvent(link="L-1->SP-1", at=3.0, duration=4.0),
                )
            ),
        )
        free_sim = FluidSimulation(spec, spec.disciplines[0])
        out_sim = FluidSimulation(outage, outage.disciplines[0])
        plan = out_sim.control_plan
        assert plan.boundaries[-1].state is plan.base_state
        # Seeded ECMP walks replay identically whether or not an outage
        # interleaved: the healed run routes exactly like the clean one.
        assert out_sim.paths == free_sim.paths


class TestPairedDraws:
    """The sampled outage process draws from the named
    ``"outage:process"`` stream, so the compiled schedule pairs across
    disciplines and matches a direct clock-free replay."""

    def test_transitions_pair_across_disciplines(self):
        spec = registry.build("gen:outage", gen_seed=1, duration=20.0)
        assert spec.outages is not None
        # Heat the sampled process up so a 20 s horizon sees real draws.
        spec = dataclasses.replace(
            spec,
            outages=dataclasses.replace(
                spec.outages,
                rate_per_second=0.4,
                mean_duration_seconds=1.5,
                start_after=0.0,
                max_outages=None,
            ),
        )
        sims = [
            FluidSimulation(spec, discipline)
            for discipline in spec.disciplines
        ]
        assert len(sims) >= 2
        first = sims[0].control_plan.transitions
        assert first  # the sampled process actually fired
        for sim in sims[1:]:
            assert sim.control_plan.transitions == first
        # And the schedule is exactly the named-stream replay.
        direct = compute_outage_schedule(
            spec.outages,
            sims[0].link_names,
            RandomStreams(seed=spec.seed).stream(OUTAGE_STREAM_NAME),
            spec.duration,
        )
        assert first == direct


class TestNoRouteAndTeardown:
    def test_partition_sheds_then_heals(self):
        """Failing both diamond uplinks partitions h-src from h-dst:
        arrivals shed as no-route drops, then delivery resumes on heal
        and the ledger still balances."""
        events = (
            OutageEvent(link=PRIMARY, at=8.0, duration=6.0),
            OutageEvent(link=BACKUP, at=8.0, duration=6.0),
        )
        spec = diamond_spec((DisciplineSpec.fifo(),), events)
        sim = FluidSimulation(spec, spec.disciplines[0])
        # Simultaneous transitions merge into one boundary per time.
        assert len(sim.control_plan.boundaries) == 2
        assert len(sim.control_plan.boundaries[0].state.noroute) == 4
        run = sim.run().collect()
        assert run.invariants_clean
        ctl = run.control
        assert ctl.outages == 2 and ctl.restores == 2
        # Every flow shed traffic while partitioned, by name, no zeros.
        assert [name for name, _ in ctl.no_route_drops] == [
            f"f{i}" for i in range(4)
        ]
        assert all(count > 0 for _, count in ctl.no_route_drops)
        for f in range(len(sim.flow_names)):
            assert sim.no_route_packets[f] > 0
            acc = (
                sim.delivered_bits[f]
                + sim.backlog_bits[f]
                + sim.dropped_bits[f]
                + sim.failure_drop_bits[f]
            )
            assert acc == pytest.approx(
                sim.generated_bits[f], rel=1e-9, abs=1.0
            )
        # Delivery resumed after the heal: more than the pre-failure
        # window alone could carry.
        bottleneck = 1_000_000.0  # bps, paper default link rate
        assert sum(sim.delivered_bits) > bottleneck * 8.0

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tight_backup_tears_down_guaranteed_flow(self, backend):
        """Two guaranteed flows fit the primary path but only one fits
        the thin backup: the second re-admission is refused and the
        flow is torn down, with its accounting closed out — and it
        stays torn across the heal, exactly like the packet
        controller."""
        builder = (
            ScenarioBuilder("fluid-tear")
            .topology(
                diamond_topology(primary_bps=1e6, backup_bps=4e5)
            )
            .duration(20.0)
            .warmup(0.0)
            .seed(1)
            .validate()
            .admission(realtime_quota=0.9)
        )
        for i in range(2):
            builder.add_flow(
                f"gr-{i}", "h-src", "h-dst",
                average_rate_pps=300, peak_rate_pps=300,
                request=GuaranteedRequest(clock_rate_bps=3e5),
                record=True,
            )
        builder.disciplines(DisciplineSpec.unified(name="CSZ"))
        spec = dataclasses.replace(
            builder.build().replace(engine="fluid"),
            outages=OutageSpec(events=FAIL_HEAL),
        )
        sim = FluidSimulation(
            spec, spec.disciplines[0], FluidOptions(backend=backend)
        )
        run = sim.run().collect()
        assert run.invariants_clean
        flows = {f.name: f for f in run.control.flows}
        survivor, torn = flows["gr-0"], flows["gr-1"]
        assert survivor.readmissions >= 1 and not survivor.torn_down
        assert survivor.reroutes == 2
        assert torn.torn_down and torn.refusals >= 1
        # The torn flow stopped generating at the boundary and its
        # backlog flushed; the books still balance.
        idx = sim.flow_names.index("gr-1")
        acc = (
            sim.delivered_bits[idx]
            + sim.backlog_bits[idx]
            + sim.dropped_bits[idx]
            + sim.failure_drop_bits[idx]
        )
        assert acc == pytest.approx(
            sim.generated_bits[idx], rel=1e-9, abs=1.0
        )
        received = {f.name: f.received for f in run.flows}
        assert received["gr-1"] < received["gr-0"]
