"""Datacenter generator + engine-seam tests."""

import json

import pytest

from repro.fluid.engine import effective_engine
from repro.net.fabric import EcmpPaths
from repro.scenario import ScenarioRunner, ScenarioSpec, registry
from repro.scenario.generators import topology_routes


class TestDeterminism:
    def test_same_gen_seed_rebuilds_identical_spec(self):
        a = registry.build("gen:fat-tree", gen_seed=3, num_flows=200)
        b = registry.build("gen:fat-tree", gen_seed=3, num_flows=200)
        assert a.to_dict() == b.to_dict()

    def test_gen_seed_changes_population(self):
        a = registry.build("gen:fat-tree", gen_seed=3, num_flows=200)
        b = registry.build("gen:fat-tree", gen_seed=4, num_flows=200)
        assert a.to_dict() != b.to_dict()

    def test_leaf_spine_round_trips_through_json(self):
        spec = registry.build(
            "gen:leaf-spine", gen_seed=2, num_flows=100
        )
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec


class TestPopulation:
    def test_default_population_is_16_per_host(self):
        spec = registry.build("gen:fat-tree", gen_seed=1, k=4)
        assert len(spec.flows) == 16 * 16

    def test_recorded_sample_is_bounded(self):
        spec = registry.build(
            "gen:fat-tree", gen_seed=1, num_flows=500, record_flows=32
        )
        assert sum(f.record for f in spec.flows) == 32

    def test_hottest_link_sits_at_target_utilization(self):
        spec = registry.build(
            "gen:fat-tree", gen_seed=1, num_flows=400,
            target_utilization=0.85,
        )
        chooser = EcmpPaths(spec.topology, seed=spec.ecmp_seed)
        rates = {l.name: l.rate_bps for l in spec.topology.links}
        offered = {}
        for flow in spec.flows:
            nodes = chooser.path(
                flow.source_host, flow.dest_host, flow.name
            )
            for a, b in zip(nodes, nodes[1:]):
                name = f"{a}->{b}"
                if name in rates:
                    offered[name] = offered.get(name, 0.0) + (
                        flow.average_rate_pps * flow.packet_size_bits
                    )
        peak = max(offered[n] / rates[n] for n in offered)
        assert peak == pytest.approx(0.85, rel=1e-9)

    def test_ecmp_flag_controls_seed_field(self):
        with_ecmp = registry.build(
            "gen:fat-tree", gen_seed=5, num_flows=64
        )
        without = registry.build(
            "gen:fat-tree", gen_seed=5, num_flows=64, ecmp=False
        )
        assert with_ecmp.ecmp_seed == 5
        assert without.ecmp_seed is None

    def test_defaults_to_fluid_engine(self):
        spec = registry.build("gen:fat-tree", gen_seed=1, num_flows=64)
        assert spec.engine == "fluid"
        assert effective_engine(spec) == "fluid"


class TestTierOverrides:
    def test_core_tier_override_reaches_core_ports(self):
        spec = registry.build(
            "gen:fat-tree", gen_seed=1, k=4, num_flows=64,
            duration=2.0, tier_kinds={"core": "fifo"},
        )
        run = ScenarioRunner(spec).run_discipline("CSZ")
        ports = dict(run.port_disciplines)
        core = [n for n in ports if "C-" in n]
        assert core
        assert all(ports[n] == "fifo-core" for n in core)
        edge = [n for n in ports if "E-" in n and "C-" not in n]
        assert all(ports[n] == "CSZ" for n in edge)

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            registry.build(
                "gen:fat-tree", gen_seed=1, num_flows=64,
                tier_kinds={"spine": "fifo"},
            )


class TestEngineSeam:
    def test_env_override_wins(self, monkeypatch):
        spec = registry.build("gen:fat-tree", gen_seed=1, num_flows=64)
        monkeypatch.setenv("REPRO_ENGINE", "packet")
        assert effective_engine(spec) == "packet"

    def test_bad_env_engine_rejected(self, monkeypatch):
        spec = registry.build("gen:fat-tree", gen_seed=1, num_flows=64)
        monkeypatch.setenv("REPRO_ENGINE", "quantum")
        with pytest.raises(ValueError, match="quantum"):
            effective_engine(spec)

    def test_engine_field_round_trips(self):
        spec = registry.build("gen:fat-tree", gen_seed=1, num_flows=64)
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone.engine == "fluid"
        assert clone.ecmp_seed == spec.ecmp_seed

    def test_runner_dispatches_by_engine(self):
        spec = registry.build(
            "gen:fat-tree", gen_seed=1, k=4, num_flows=32,
            duration=2.0, ecmp=False,
        )
        fluid = ScenarioRunner(spec).run_discipline("CSZ")
        packet = ScenarioRunner(
            spec.replace(engine="packet")
        ).run_discipline("CSZ")
        # The fluid run advances flows per epoch; the packet run counts
        # simulator events, orders of magnitude more.
        assert packet.events_processed > 5 * fluid.events_processed
