"""Packet-vs-fluid tolerance goldens.

The fluid engine's contract (documented in the README) is agreement
with the packet engine on what both can express: per-flow delivered
traffic within 10%, mean queueing delay within 15 ms, link utilization
within 5 points.  These goldens pin that band on the paper's canonical
topologies and on a small generated fat-tree.

Every comparison runs with identical routing on both engines: the
packet engine routes per-destination statically and ignores
``ecmp_seed``, so multipath fabrics are compared with ``ecmp=False``
(single-path topologies are unaffected).
"""

import pytest

from repro.scenario import (
    DisciplineSpec,
    ScenarioBuilder,
    ScenarioRunner,
    registry,
)

#: Documented tolerance band (see README "Fluid engine").
MAX_FLOW_RATE_REL = 0.10
MEAN_FLOW_RATE_REL = 0.05
MAX_DELAY_ABS_MS = 15.0
MEAN_DELAY_ABS_MS = 8.0
MAX_UTILIZATION_ABS = 0.05
#: Generated multipath fabrics run hotter links (placement is random,
#: only the single hottest link is pinned to the target), so the delay
#: tail band is wider there; rate and utilization bands are unchanged.
FABRIC_MAX_DELAY_ABS_MS = 25.0

DURATION = 30.0


def compare(spec, discipline):
    fluid = ScenarioRunner(
        spec.replace(engine="fluid")
    ).run_discipline(discipline)
    packet = ScenarioRunner(
        spec.replace(engine="packet")
    ).run_discipline(discipline)
    by_name = {f.name: f for f in packet.flows}
    rate_rel, delay_ms = [], []
    for f in fluid.flows:
        p = by_name[f.name]
        rate_rel.append(abs(f.received - p.received) / max(p.received, 1))
        delay_ms.append(abs(f.mean_seconds - p.mean_seconds) * 1e3)
    fluid_util = dict(fluid.link_utilizations)
    packet_util = dict(packet.link_utilizations)
    util_abs = max(
        abs(fluid_util[name] - packet_util[name]) for name in fluid_util
    )
    return rate_rel, delay_ms, util_abs


def assert_within_band(spec, discipline, max_delay_ms=MAX_DELAY_ABS_MS):
    rate_rel, delay_ms, util_abs = compare(spec, discipline)
    assert max(rate_rel) <= MAX_FLOW_RATE_REL
    assert sum(rate_rel) / len(rate_rel) <= MEAN_FLOW_RATE_REL
    assert max(delay_ms) <= max_delay_ms
    assert sum(delay_ms) / len(delay_ms) <= MEAN_DELAY_ABS_MS
    assert util_abs <= MAX_UTILIZATION_ABS


class TestSingleLink:
    """The Table-1 workload: 10 Appendix sources at 83.5% load."""

    @pytest.fixture(scope="class")
    def spec(self):
        builder = (
            ScenarioBuilder("eq-single-link")
            .single_link()
            .paper_flows(10, record=True)
            .duration(DURATION)
            .seed(1)
        )
        builder.disciplines(
            DisciplineSpec.fifo(),
            DisciplineSpec.unified(name="CSZ"),
            DisciplineSpec.wfq(equal_share_flows=10),
        )
        return builder.build()

    @pytest.mark.parametrize("discipline", ["FIFO", "CSZ", "WFQ"])
    def test_within_band(self, spec, discipline):
        assert_within_band(spec, discipline)


class TestChain:
    """Through + per-hop cross traffic over a 4-switch chain."""

    @pytest.fixture(scope="class")
    def spec(self):
        builder = ScenarioBuilder("eq-chain").chain(4).duration(
            DURATION
        ).seed(1)
        for i in range(3):
            builder.add_flow(f"thru-{i}", "Host-1", "Host-4", record=True)
        for hop in range(3):
            for i in range(3):
                builder.add_flow(
                    f"cross-{hop}-{i}",
                    f"Host-{hop + 1}",
                    f"Host-{hop + 2}",
                    record=True,
                )
        builder.disciplines(
            DisciplineSpec.fifo(), DisciplineSpec.unified(name="CSZ")
        )
        return builder.build()

    @pytest.mark.parametrize("discipline", ["FIFO", "CSZ"])
    def test_within_band(self, spec, discipline):
        assert_within_band(spec, discipline)


class TestParkingLot:
    """The registered parking-lot merge scenario, as shipped."""

    @pytest.fixture(scope="class")
    def spec(self):
        return registry.build("parking_lot", duration=DURATION)

    @pytest.mark.parametrize("discipline", ["FIFO", "CSZ"])
    def test_within_band(self, spec, discipline):
        assert_within_band(spec, discipline)


class TestFailHeal:
    """Fail-heal cell: a diamond losing its primary path for the middle
    third of the run.  Both engines flush the dead path, reroute onto
    the backup, and restore the original routes; the goldens pin
    agreement on traffic/delay/utilization across the whole cycle, and
    the control summaries must agree on the discrete events exactly."""

    @pytest.fixture(scope="class")
    def spec(self):
        import dataclasses

        from repro.scenario import OutageEvent, OutageSpec, TopologySpec

        topology = TopologySpec.graph(
            nodes=("S-A", "S-B", "S-C", "S-D"),
            links=[
                {"src": "S-A", "dst": "S-B"},
                {"src": "S-B", "dst": "S-C"},
                {"src": "S-A", "dst": "S-D"},
                {"src": "S-D", "dst": "S-C"},
            ],
            host_attachments=(("h-src", "S-A"), ("h-dst", "S-C")),
        )
        builder = (
            ScenarioBuilder("eq-fail-heal")
            .topology(topology)
            .duration(DURATION)
            .warmup(0.0)
            .seed(1)
        )
        for i in range(4):
            builder.add_flow(f"f{i}", "h-src", "h-dst", record=True)
        builder.disciplines(
            DisciplineSpec.fifo(), DisciplineSpec.unified(name="CSZ")
        )
        spec = builder.build()
        return dataclasses.replace(
            spec,
            outages=OutageSpec(
                events=(
                    OutageEvent(link="S-A->S-B", at=10.0, duration=10.0),
                )
            ),
        )

    @pytest.mark.parametrize("discipline", ["FIFO", "CSZ"])
    def test_within_band(self, spec, discipline):
        assert_within_band(spec, discipline)

    @pytest.mark.parametrize("discipline", ["FIFO", "CSZ"])
    def test_control_summaries_agree(self, spec, discipline):
        fluid = ScenarioRunner(
            spec.replace(engine="fluid")
        ).run_discipline(discipline)
        packet = ScenarioRunner(
            spec.replace(engine="packet")
        ).run_discipline(discipline)
        assert fluid.control is not None and packet.control is not None
        assert fluid.control.outages == packet.control.outages == 1
        assert fluid.control.restores == packet.control.restores == 1
        assert fluid.control.recomputes == packet.control.recomputes
        by_name = {f.name: f for f in packet.control.flows}
        assert len(fluid.control.flows) == len(packet.control.flows)
        for flow in fluid.control.flows:
            twin = by_name[flow.name]
            assert flow.reroutes == twin.reroutes == 2
            assert flow.torn_down == twin.torn_down is False


class TestGeneratedFatTree:
    """The generator family itself: a k=4 instance both engines can
    run.  ``ecmp=False`` so routing is identical (see module docstring);
    rate agreement here is what licenses the fluid-only 100k+ runs."""

    def test_within_band(self):
        spec = registry.build(
            "gen:fat-tree",
            gen_seed=1,
            k=4,
            num_flows=64,
            record_flows=16,
            ecmp=False,
            duration=20.0,
        )
        assert_within_band(
            spec, "CSZ", max_delay_ms=FABRIC_MAX_DELAY_ABS_MS
        )
