"""Fabric family tests: fat-tree / leaf-spine wiring and seeded ECMP."""

import pytest

from repro.net.fabric import (
    EcmpPaths,
    fat_tree_topology,
    leaf_spine_topology,
)
from repro.scenario.generators import topology_routes


class TestFatTree:
    def test_k4_node_and_link_counts(self):
        topo = fat_tree_topology(k=4)
        half = 2
        cores = half * half
        switches = [n for n in topo.nodes]
        assert sum(n.startswith("C-") for n in switches) == cores
        assert sum(n.startswith("A-") for n in switches) == 4 * half
        assert sum(n.startswith("E-") for n in switches) == 4 * half
        # Hosts default to k/2 per edge switch.
        assert len(topo.host_names) == 4 * half * half
        # Duplex inter-switch links: edge-agg full bipartite per pod
        # (half x half x 4 pods) + every agg's half core uplinks.
        inter = 2 * (4 * half * half + 4 * half * half)
        assert len(topo.links) == inter

    def test_k6_scales(self):
        topo = fat_tree_topology(k=6)
        assert sum(n.startswith("C-") for n in topo.nodes) == 9
        assert len(topo.host_names) == 6 * 3 * 3

    def test_every_host_pair_routes(self):
        topo = fat_tree_topology(k=4)
        routing = topology_routes(topo)
        hosts = topo.host_names
        # Intra-pod and inter-pod pairs both resolve.
        assert routing.path(hosts[0], hosts[1])
        assert routing.path(hosts[0], hosts[-1])

    def test_oversubscription_trims_core_uplinks(self):
        flat = fat_tree_topology(k=4)
        over = fat_tree_topology(k=4, oversubscription=4.0)
        rates = lambda topo: {
            link.name: link.rate_bps for link in topo.links
        }
        flat_r, over_r = rates(flat), rates(over)
        for name in flat_r:
            if "->C-" in name or name.startswith("C-"):
                assert over_r[name] == pytest.approx(flat_r[name] / 4.0)
            else:
                assert over_r[name] == flat_r[name]

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree_topology(k=5)


class TestLeafSpine:
    def test_counts(self):
        topo = leaf_spine_topology(leaves=4, spines=3, hosts_per_leaf=5)
        assert sum(n.startswith("L-") for n in topo.nodes) == 4
        assert sum(n.startswith("SP-") for n in topo.nodes) == 3
        assert len(topo.host_names) == 20
        # Full duplex leaf-spine mesh + host access links are separate
        # (hosts are attachments, not links).
        assert len(topo.links) == 2 * 4 * 3

    def test_cross_leaf_paths_are_two_hops(self):
        topo = leaf_spine_topology(leaves=3, spines=2, hosts_per_leaf=1)
        routing = topology_routes(topo)
        path = routing.path(topo.host_names[0], topo.host_names[-1])
        # host -> leaf -> spine -> leaf -> host
        assert len(path) == 5


class TestEcmpPaths:
    def test_deterministic_per_flow(self):
        topo = fat_tree_topology(k=4)
        hosts = topo.host_names
        a = EcmpPaths(topo, seed=7)
        b = EcmpPaths(topo, seed=7)
        for i in range(10):
            name = f"flow-{i}"
            assert a.path(hosts[0], hosts[-1], name) == b.path(
                hosts[0], hosts[-1], name
            )

    def test_seed_changes_spread(self):
        topo = fat_tree_topology(k=4)
        hosts = topo.host_names
        paths = {
            seed: tuple(
                tuple(EcmpPaths(topo, seed=seed).path(
                    hosts[0], hosts[-1], f"flow-{i}"
                ))
                for i in range(16)
            )
            for seed in (1, 2)
        }
        assert paths[1] != paths[2]

    def test_paths_are_valid_and_shortest(self):
        topo = fat_tree_topology(k=4)
        link_set = {link.name for link in topo.links}
        routing = topology_routes(topo)
        chooser = EcmpPaths(topo, seed=3)
        hosts = topo.host_names
        static_len = len(routing.path(hosts[0], hosts[-1]))
        for i in range(16):
            nodes = chooser.path(hosts[0], hosts[-1], f"flow-{i}")
            assert len(nodes) == static_len
            for a, b in zip(nodes[1:-1], nodes[2:-1]):
                assert f"{a}->{b}" in link_set

    def test_multipath_actually_spreads(self):
        topo = fat_tree_topology(k=4)
        hosts = topo.host_names
        chooser = EcmpPaths(topo, seed=5)
        cores = {
            next(n for n in chooser.path(hosts[0], hosts[-1], f"flow-{i}")
                 if n.startswith("C-"))
            for i in range(32)
        }
        # 32 inter-pod flows over 4 equal-cost cores hit more than one.
        assert len(cores) > 1


class TestEcmpCacheKeys:
    """Staleness audit for the shared/masked memo caches: a chooser's
    walks must be a pure function of (topology, seed, down-set, flow),
    never of what some other link state computed first."""

    def _topo(self):
        return leaf_spine_topology(leaves=3, spines=3, hosts_per_leaf=1)

    def test_masked_empty_is_self(self):
        chooser = EcmpPaths(self._topo(), seed=3)
        assert chooser.masked(frozenset()) is chooser
        assert chooser.masked(()) is chooser

    def test_masked_view_does_not_pollute_parent_memos(self):
        topo = self._topo()
        chooser = EcmpPaths(topo, seed=3)
        hosts = topo.host_names
        flows = [f"flow-{i}" for i in range(12)]
        before = [
            tuple(chooser.path(hosts[0], hosts[-1], f)) for f in flows
        ]
        dead = next(
            f"{a}->{b}"
            for path in before
            for a, b in zip(path, path[1:])
            if a.startswith("L-") and b.startswith("SP-")
        )
        view = chooser.masked({dead})
        assert view is not chooser
        rerouted = [
            tuple(view.path(hosts[0], hosts[-1], f)) for f in flows
        ]
        for path in rerouted:
            assert dead not in {
                f"{a}->{b}" for a, b in zip(path, path[1:])
            }
        # The parent's walks replay bit-identically after the view
        # resolved the same population: restore hands back the original
        # routes, not memo-shuffled equivalents.
        after = [
            tuple(chooser.path(hosts[0], hosts[-1], f)) for f in flows
        ]
        assert after == before

    def test_masked_views_cached_per_down_set(self):
        topo = self._topo()
        chooser = EcmpPaths(topo, seed=1)
        a = chooser.masked({"L-1->SP-1"})
        b = chooser.masked({"L-1->SP-2"})
        assert a is not b
        assert chooser.masked({"L-1->SP-1"}) is a
        # Masking a masked view composes: the down-sets union.
        ab = a.masked({"L-1->SP-2"})
        assert ab.exclude_links == {"L-1->SP-1", "L-1->SP-2"}
        both = chooser.masked({"L-1->SP-1", "L-1->SP-2"})
        hosts = topo.host_names
        assert tuple(ab.path(hosts[0], hosts[-1], "f")) == tuple(
            both.path(hosts[0], hosts[-1], "f")
        )

    def test_masked_cache_evicts_fifo(self):
        topo = self._topo()
        chooser = EcmpPaths(topo, seed=1)
        links = [
            f"L-{l}->SP-{s}" for l in (1, 2, 3) for s in (1, 2, 3)
        ]
        first = chooser.masked({links[0]})
        for name in links[1:EcmpPaths._masked_cap + 1]:
            chooser.masked({name})
        assert len(chooser._masked) <= EcmpPaths._masked_cap
        # The oldest view fell out; a fresh (correct) one replaces it.
        assert chooser.masked({links[0]}) is not first

    def test_shared_keyed_by_topology_object_and_seed(self):
        topo_a, topo_b = self._topo(), self._topo()
        a = EcmpPaths.shared(topo_a, seed=7)
        assert EcmpPaths.shared(topo_a, seed=7) is a
        assert EcmpPaths.shared(topo_a, seed=8) is not a
        assert EcmpPaths.shared(topo_b, seed=7) is not a
