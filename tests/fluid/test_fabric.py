"""Fabric family tests: fat-tree / leaf-spine wiring and seeded ECMP."""

import pytest

from repro.net.fabric import (
    EcmpPaths,
    fat_tree_topology,
    leaf_spine_topology,
)
from repro.scenario.generators import topology_routes


class TestFatTree:
    def test_k4_node_and_link_counts(self):
        topo = fat_tree_topology(k=4)
        half = 2
        cores = half * half
        switches = [n for n in topo.nodes]
        assert sum(n.startswith("C-") for n in switches) == cores
        assert sum(n.startswith("A-") for n in switches) == 4 * half
        assert sum(n.startswith("E-") for n in switches) == 4 * half
        # Hosts default to k/2 per edge switch.
        assert len(topo.host_names) == 4 * half * half
        # Duplex inter-switch links: edge-agg full bipartite per pod
        # (half x half x 4 pods) + every agg's half core uplinks.
        inter = 2 * (4 * half * half + 4 * half * half)
        assert len(topo.links) == inter

    def test_k6_scales(self):
        topo = fat_tree_topology(k=6)
        assert sum(n.startswith("C-") for n in topo.nodes) == 9
        assert len(topo.host_names) == 6 * 3 * 3

    def test_every_host_pair_routes(self):
        topo = fat_tree_topology(k=4)
        routing = topology_routes(topo)
        hosts = topo.host_names
        # Intra-pod and inter-pod pairs both resolve.
        assert routing.path(hosts[0], hosts[1])
        assert routing.path(hosts[0], hosts[-1])

    def test_oversubscription_trims_core_uplinks(self):
        flat = fat_tree_topology(k=4)
        over = fat_tree_topology(k=4, oversubscription=4.0)
        rates = lambda topo: {
            link.name: link.rate_bps for link in topo.links
        }
        flat_r, over_r = rates(flat), rates(over)
        for name in flat_r:
            if "->C-" in name or name.startswith("C-"):
                assert over_r[name] == pytest.approx(flat_r[name] / 4.0)
            else:
                assert over_r[name] == flat_r[name]

    def test_odd_k_rejected(self):
        with pytest.raises(ValueError):
            fat_tree_topology(k=5)


class TestLeafSpine:
    def test_counts(self):
        topo = leaf_spine_topology(leaves=4, spines=3, hosts_per_leaf=5)
        assert sum(n.startswith("L-") for n in topo.nodes) == 4
        assert sum(n.startswith("SP-") for n in topo.nodes) == 3
        assert len(topo.host_names) == 20
        # Full duplex leaf-spine mesh + host access links are separate
        # (hosts are attachments, not links).
        assert len(topo.links) == 2 * 4 * 3

    def test_cross_leaf_paths_are_two_hops(self):
        topo = leaf_spine_topology(leaves=3, spines=2, hosts_per_leaf=1)
        routing = topology_routes(topo)
        path = routing.path(topo.host_names[0], topo.host_names[-1])
        # host -> leaf -> spine -> leaf -> host
        assert len(path) == 5


class TestEcmpPaths:
    def test_deterministic_per_flow(self):
        topo = fat_tree_topology(k=4)
        hosts = topo.host_names
        a = EcmpPaths(topo, seed=7)
        b = EcmpPaths(topo, seed=7)
        for i in range(10):
            name = f"flow-{i}"
            assert a.path(hosts[0], hosts[-1], name) == b.path(
                hosts[0], hosts[-1], name
            )

    def test_seed_changes_spread(self):
        topo = fat_tree_topology(k=4)
        hosts = topo.host_names
        paths = {
            seed: tuple(
                tuple(EcmpPaths(topo, seed=seed).path(
                    hosts[0], hosts[-1], f"flow-{i}"
                ))
                for i in range(16)
            )
            for seed in (1, 2)
        }
        assert paths[1] != paths[2]

    def test_paths_are_valid_and_shortest(self):
        topo = fat_tree_topology(k=4)
        link_set = {link.name for link in topo.links}
        routing = topology_routes(topo)
        chooser = EcmpPaths(topo, seed=3)
        hosts = topo.host_names
        static_len = len(routing.path(hosts[0], hosts[-1]))
        for i in range(16):
            nodes = chooser.path(hosts[0], hosts[-1], f"flow-{i}")
            assert len(nodes) == static_len
            for a, b in zip(nodes[1:-1], nodes[2:-1]):
                assert f"{a}->{b}" in link_set

    def test_multipath_actually_spreads(self):
        topo = fat_tree_topology(k=4)
        hosts = topo.host_names
        chooser = EcmpPaths(topo, seed=5)
        cores = {
            next(n for n in chooser.path(hosts[0], hosts[-1], f"flow-{i}")
                 if n.startswith("C-"))
            for i in range(32)
        }
        # 32 inter-pod flows over 4 equal-cost cores hit more than one.
        assert len(cores) > 1
