"""Fused-kernel guarantees: kernel-vs-pure property grid, fused-block
bit-identity, and steady-state fast-forward equivalence.

Three distinct contracts, tested at three distinct strengths:

* kernel (NumPy) vs the authoritative pure backend: agreement at
  ``rel=1e-9`` across generated fat-trees, disciplines, and saturation
  (the backends waterfill in different float association, so last-ulp
  divergence is expected; the committed tolerance is the contract).
* fused multi-epoch blocks vs the kernel's own single-epoch schedule:
  per-flow state and samples *bitwise* equal — fusing may only change
  the fold order of run aggregates (pinned at 1e-9).
* fast-forward on vs off: *bitwise* equal everything, including exact
  ``events_processed`` and per-epoch sample lists, with the warmup
  crossing (the admission-to-statistics event an elided epoch must not
  straddle) landing exactly on a would-be-skipped epoch boundary.
"""

import pytest

from repro.fluid import FluidOptions, FluidSimulation
from repro.fluid import model as fluid_model
from repro.scenario import DisciplineSpec, ScenarioBuilder, registry

pytestmark = pytest.mark.skipif(
    fluid_model._np is None, reason="numpy not installed"
)

GRID_SEEDS = (1, 2, 3, 5, 8)
GRID_DISCIPLINES = ("FIFO", "WFQ", "CSZ")
_spec_cache = {}


def grid_spec(gen_seed, target_utilization=0.85):
    """One 10k-flow fat-tree property-grid cell (cached per session)."""
    key = (gen_seed, target_utilization)
    if key not in _spec_cache:
        _spec_cache[key] = registry.build(
            "gen:fat-tree",
            gen_seed=gen_seed,
            k=8,
            num_flows=10_000,
            duration=2.0,
            warmup=0.5,
            engine="fluid",
            target_utilization=target_utilization,
            disciplines=(
                DisciplineSpec.fifo(),
                DisciplineSpec.wfq(),
                DisciplineSpec.unified(name="CSZ"),
            ),
        )
    return _spec_cache[key]


def run_backend(spec, discipline_name, backend, **options):
    disc = next(d for d in spec.disciplines if d.name == discipline_name)
    sim = FluidSimulation(
        spec, disc,
        FluidOptions(backend=backend, epoch_seconds=0.5, **options),
    )
    sim.run()
    return sim


def assert_flow_state_close(a, b, rel):
    for field in (
        "generated_bits", "delivered_bits", "backlog_bits", "dropped_bits"
    ):
        xs, ys = getattr(a, field), getattr(b, field)
        assert len(xs) == len(ys)
        for x, y in zip(xs, ys):
            assert x == pytest.approx(y, rel=rel, abs=1e-6), field
    assert a.events_processed == b.events_processed


class TestKernelVsPure:
    """The NumPy kernel against the authoritative pure backend."""

    @pytest.mark.parametrize("discipline", GRID_DISCIPLINES)
    @pytest.mark.parametrize("gen_seed", GRID_SEEDS)
    def test_property_grid(self, gen_seed, discipline):
        spec = grid_spec(gen_seed)
        kernel = run_backend(spec, discipline, "numpy")
        pure = run_backend(spec, discipline, "pure")
        assert_flow_state_close(kernel, pure, rel=1e-9)

    @pytest.mark.parametrize("discipline", GRID_DISCIPLINES)
    def test_saturated_grid_cell(self, discipline):
        """Offered load 1.5x the hottest link: the waterfill saturates,
        backlogs build, and the buffer clamp sheds — the fused path must
        hand over to the exact single-epoch schedule throughout."""
        spec = grid_spec(1, target_utilization=1.5)
        kernel = run_backend(spec, discipline, "numpy")
        pure = run_backend(spec, discipline, "pure")
        assert sum(kernel.dropped_bits) > 0  # clamp actually engaged
        assert_flow_state_close(kernel, pure, rel=1e-9)

    def test_recorded_samples_match(self):
        spec = grid_spec(1)
        kernel = run_backend(spec, "CSZ", "numpy")
        pure = run_backend(spec, "CSZ", "pure")
        assert kernel.samples.keys() == pure.samples.keys()
        for f, rows in pure.samples.items():
            krows = kernel.samples[f]
            assert len(krows) == len(rows)
            for (kd, kw), (pd, pw) in zip(krows, rows):
                assert kd == pytest.approx(pd, rel=1e-9, abs=1e-12)
                assert kw == pytest.approx(pw, rel=1e-9, abs=1e-12)


class TestFusedBlockBitIdentity:
    """Fusing K epochs may not change per-flow state at all."""

    @pytest.mark.parametrize("target_utilization", (0.85, 1.5))
    def test_fused_equals_single_epoch(self, target_utilization):
        spec = grid_spec(1, target_utilization=target_utilization)
        fused = run_backend(spec, "FIFO", "numpy")
        single = run_backend(spec, "FIFO", "numpy", fuse_epochs=1)
        for field in (
            "generated_bits", "delivered_bits", "backlog_bits",
            "dropped_bits",
        ):
            assert getattr(fused, field) == getattr(single, field), field
        assert fused.events_processed == single.events_processed
        assert fused.samples == single.samples
        # Run aggregates fold in a different order: 1e-9, not bitwise.
        for field in ("link_served_bits", "link_wait_num", "link_wait_den"):
            for x, y in zip(getattr(fused, field), getattr(single, field)):
                assert x == pytest.approx(y, rel=1e-9, abs=1e-9), field


def constant_population(rates_pps, duration=10.25, warmup=3.0):
    """All-constant (duty = 1) flows on one link: the fast-forward
    regime.  ``duration=10.25`` leaves a trailing partial epoch the
    jump must stop short of."""
    builder = ScenarioBuilder("ff-steady").single_link().duration(
        duration
    ).seed(1)
    builder.warmup(warmup)
    for i, rate in enumerate(rates_pps):
        builder.add_flow(
            f"c{i}", "src-host", "dst-host",
            average_rate_pps=rate, peak_rate_pps=rate, record=True,
        )
    builder.disciplines(DisciplineSpec.fifo())
    return builder.build().replace(engine="fluid")


def run_ff(spec, fast_forward, monkeypatch=None):
    """Run on the kernel, counting exact single-epoch computations."""
    from repro.fluid import kernel as kernel_mod

    calls = {"n": 0}
    if monkeypatch is not None:
        original = kernel_mod.FluidKernel._single_epoch

        def counting(self, *args, **kwargs):
            calls["n"] += 1
            return original(self, *args, **kwargs)

        monkeypatch.setattr(
            kernel_mod.FluidKernel, "_single_epoch", counting
        )
    sim = FluidSimulation(
        spec, spec.disciplines[0],
        FluidOptions(
            backend="numpy", epoch_seconds=0.5, fast_forward=fast_forward
        ),
    )
    sim.run()
    if monkeypatch is not None:
        monkeypatch.undo()
    return sim, calls["n"]


class TestFastForward:
    def assert_bitwise_equal(self, a, b):
        for field in (
            "generated_bits", "delivered_bits", "backlog_bits",
            "dropped_bits", "link_served_bits", "link_wait_num",
            "link_wait_den", "link_realtime_bits",
        ):
            assert getattr(a, field) == getattr(b, field), field
        assert a.events_processed == b.events_processed
        assert a.samples == b.samples

    def test_steady_interval_elided_exactly(self, monkeypatch):
        """Uncongested constant flows: the kernel must compute only the
        reference epochs around each boundary and replay the rest, with
        results bitwise equal to stepping every epoch."""
        spec = constant_population((200, 300))
        ff, computed = run_ff(spec, True, monkeypatch)
        plain, _ = run_ff(spec, False, monkeypatch)
        # 21 epochs (ceil(10.25 / 0.5)); fast-forward computes only the
        # reference epoch at each jump landing plus the trailing
        # partial epoch — everything else replays.
        assert computed <= 4
        self.assert_bitwise_equal(ff, plain)

    def test_warmup_exactly_on_epoch_boundary(self, monkeypatch):
        """The adversarial case: sample recording switches on at
        t = 3.0, exactly an epoch edge inside the would-be-skipped
        steady interval.  The jump must stop there — eliding across it
        would mis-count the recorded epochs."""
        spec = constant_population((200, 300), warmup=3.0)
        ff, _ = run_ff(spec, True, monkeypatch)
        plain, _ = run_ff(spec, False, monkeypatch)
        # Epochs with t0 >= 3.0 out of t0 = 0, 0.5, ..., 10.0: 15.
        for f, rows in plain.samples.items():
            assert len(rows) == 15
        self.assert_bitwise_equal(ff, plain)

    def test_warmup_strictly_inside_jump_interval(self, monkeypatch):
        spec = constant_population((200, 300), warmup=3.2)
        ff, _ = run_ff(spec, True, monkeypatch)
        plain, _ = run_ff(spec, False, monkeypatch)
        for f, rows in plain.samples.items():
            assert len(rows) == 14  # first recordable t0 is 3.5
        self.assert_bitwise_equal(ff, plain)

    def test_saturated_steady_state_still_exact(self, monkeypatch):
        """Overloaded constant flows grow backlog every epoch: no
        steady state, so nothing may be elided — and results must
        still match the plain schedule bitwise."""
        spec = constant_population((800, 600))
        ff, computed = run_ff(spec, True, monkeypatch)
        plain, stepped = run_ff(spec, False, monkeypatch)
        assert computed == stepped  # every epoch computed exactly
        assert sum(ff.backlog_bits) > 0
        self.assert_bitwise_equal(ff, plain)

    def test_on_off_flows_never_fast_forward(self, monkeypatch):
        """duty < 1 flows transition within the run; the constant-set
        precondition fails and the fused block path serves instead."""
        builder = ScenarioBuilder("ff-onoff").single_link().duration(
            10.0
        ).seed(1)
        builder.warmup(3.0)
        builder.add_flow(
            "bursty", "src-host", "dst-host",
            average_rate_pps=200, record=True,
        )
        builder.disciplines(DisciplineSpec.fifo())
        spec = builder.build().replace(engine="fluid")
        ff, _ = run_ff(spec, True, monkeypatch)
        plain, _ = run_ff(spec, False, monkeypatch)
        self.assert_bitwise_equal(ff, plain)

    def test_kill_switch_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLUID_FF", "0")
        assert FluidOptions.from_env().fast_forward is False
        monkeypatch.setenv("REPRO_FLUID_FF", "1")
        assert FluidOptions.from_env().fast_forward is True


class TestRecordFlowsSwitch:
    def test_record_flows_off_skips_samples_only(self):
        spec = grid_spec(1)
        on = run_backend(spec, "FIFO", "numpy")
        off = run_backend(spec, "FIFO", "numpy", record_flows=False)
        assert on.samples and not off.samples
        assert on.delivered_bits == off.delivered_bits
        assert on.events_processed == off.events_processed
        rows = off.collect()
        assert len(rows.flows) == len(on.collect().flows)
