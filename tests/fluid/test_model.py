"""Fluid model unit + property tests: shares, conservation, backends."""

import pytest

from repro.fluid import FluidOptions, FluidSimulation
from repro.fluid import model as fluid_model
from repro.scenario import (
    DisciplineSpec,
    ScenarioBuilder,
    ScenarioRunner,
    registry,
)


def constant_rate(builder, name, src, dst, rate_pps, **kwargs):
    """A duty-cycle-1 (always-on) source: deterministic fluid demand."""
    return builder.add_flow(
        name, src, dst,
        average_rate_pps=rate_pps, peak_rate_pps=rate_pps, **kwargs
    )


def single_link_spec(disciplines, flows, duration=20.0):
    builder = ScenarioBuilder("fluid-unit").single_link().duration(
        duration
    ).seed(1)
    for name, rate_pps in flows:
        constant_rate(
            builder, name, "src-host", "dst-host", rate_pps, record=True
        )
    builder.disciplines(*disciplines)
    return builder.build().replace(engine="fluid")


class TestBottleneckShares:
    """Closed-form max-min shares on one saturated 1 Mb/s link."""

    def test_wfq_equal_split_with_demand_bounded_flow(self):
        # Two 800-pps heavies + one 100-pps light on a 1000-pkt/s link
        # (1000-bit packets): the light flow gets its demand, the
        # heavies split the remaining 900 equally.
        spec = single_link_spec(
            (DisciplineSpec.wfq(equal_share_flows=3),),
            [("heavy-a", 800), ("heavy-b", 800), ("light", 100)],
        )
        run = ScenarioRunner(spec).run_discipline("WFQ")
        per_sec = {
            f.name: f.received / spec.duration for f in run.flows
        }
        assert per_sec["light"] == pytest.approx(100, rel=0.02)
        assert per_sec["heavy-a"] == pytest.approx(450, rel=0.02)
        assert per_sec["heavy-b"] == pytest.approx(450, rel=0.02)

    def test_fifo_splits_proportionally_to_demand(self):
        spec = single_link_spec(
            (DisciplineSpec.fifo(),),
            [("big", 900), ("small", 300)],
        )
        run = ScenarioRunner(spec).run_discipline("FIFO")
        per_sec = {
            f.name: f.received / spec.duration for f in run.flows
        }
        # Demand-proportional: 900:300 over 1000 pkt/s -> 750:250.
        assert per_sec["big"] == pytest.approx(750, rel=0.02)
        assert per_sec["small"] == pytest.approx(250, rel=0.02)

    def test_underloaded_link_serves_every_demand(self):
        spec = single_link_spec(
            (DisciplineSpec.fifo(),),
            [("a", 300), ("b", 200)],
        )
        run = ScenarioRunner(spec).run_discipline("FIFO")
        for f in run.flows:
            want = 300 if f.name == "a" else 200
            assert f.received / spec.duration == pytest.approx(
                want, rel=0.01
            )
            assert f.mean_seconds == pytest.approx(0.0, abs=1e-9)

    def test_unified_guards_realtime_over_datagram(self):
        from repro.net.packet import ServiceClass

        builder = ScenarioBuilder("fluid-tiers").single_link().duration(
            20.0
        ).seed(1)
        constant_rate(
            builder, "rt", "src-host", "dst-host", 600,
            service_class=ServiceClass.PREDICTED, record=True,
        )
        constant_rate(
            builder, "dg", "src-host", "dst-host", 600, record=True
        )
        builder.disciplines(DisciplineSpec.unified(name="CSZ"))
        spec = builder.build().replace(engine="fluid")
        run = ScenarioRunner(spec).run_discipline("CSZ")
        per_sec = {
            f.name: f.received / spec.duration for f in run.flows
        }
        # The predicted tier drains first: full 600; datagram gets the
        # residual 400 and eats the whole queue.
        assert per_sec["rt"] == pytest.approx(600, rel=0.02)
        assert per_sec["dg"] == pytest.approx(400, rel=0.05)
        assert run.flow("rt").mean_seconds < run.flow("dg").mean_seconds


GEN_SEEDS = (1, 2, 3, 5, 8)


class TestPropertyGrid:
    """Conservation properties over generated random-graph instances."""

    @pytest.mark.parametrize("gen_seed", GEN_SEEDS)
    def test_rate_conservation_and_shares(self, gen_seed):
        spec = registry.build(
            "gen:random-graph", gen_seed=gen_seed, duration=10.0
        ).replace(engine="fluid")
        sim = FluidSimulation(spec, spec.disciplines[0])
        run = sim.run().collect()
        assert run.invariants is not None and run.invariants_clean
        duration = spec.duration
        for l, served in enumerate(sim.link_served_bits):
            # Rate conservation: no link serves beyond capacity.
            assert served <= sim.caps[l] * duration * (1 + 1e-6)
        for f in range(len(sim.flow_names)):
            gen = sim.generated_bits[f]
            acc = (
                sim.delivered_bits[f]
                + sim.backlog_bits[f]
                + sim.dropped_bits[f]
            )
            assert acc == pytest.approx(gen, rel=1e-6, abs=1.0)

    @pytest.mark.parametrize("gen_seed", GEN_SEEDS[:2])
    def test_unmet_demand_implies_saturated_bottleneck(self, gen_seed):
        """Bottleneck-share correctness: a flow only falls short of its
        offered load when some link on its path is (near-)saturated."""
        spec = registry.build(
            "gen:random-graph", gen_seed=gen_seed, duration=10.0
        ).replace(engine="fluid")
        sim = FluidSimulation(spec, spec.disciplines[0])
        sim.run()
        duration = spec.duration
        for f, links in enumerate(sim.paths):
            short = sim.backlog_bits[f] + sim.dropped_bits[f]
            if short <= sim.generated_bits[f] * 1e-3:
                continue
            assert any(
                sim.link_served_bits[l]
                >= 0.5 * sim.caps[l] * duration
                for l in links
            ), f"flow {sim.flow_names[f]} starved on an idle path"


class TestBackends:
    @pytest.mark.skipif(
        fluid_model._np is None, reason="numpy not installed"
    )
    def test_numpy_and_pure_agree(self):
        spec = registry.build(
            "gen:random-graph", gen_seed=4, duration=5.0
        ).replace(engine="fluid")
        runs = {}
        for backend in ("numpy", "pure"):
            sim = FluidSimulation(
                spec, spec.disciplines[0],
                FluidOptions(backend=backend, epoch_seconds=0.05),
            )
            runs[backend] = sim.run().collect()
        np_util = dict(runs["numpy"].link_utilizations)
        py_util = dict(runs["pure"].link_utilizations)
        for name in np_util:
            assert np_util[name] == pytest.approx(
                py_util[name], rel=1e-9, abs=1e-9
            )
        np_flows = {f.name: f for f in runs["numpy"].flows}
        for f in runs["pure"].flows:
            assert f.received == pytest.approx(
                np_flows[f.name].received, rel=1e-9, abs=1e-6
            )

    def test_epoch_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLUID_EPOCH", "0.25")
        assert FluidOptions.from_env().epoch_seconds == 0.25
        monkeypatch.setenv("REPRO_FLUID_BACKEND", "pure")
        assert FluidOptions.from_env().backend == "pure"

    def test_unknown_backend_rejected(self):
        spec = single_link_spec(
            (DisciplineSpec.fifo(),), [("a", 100)], duration=1.0
        )
        sim = FluidSimulation(
            spec, spec.disciplines[0], FluidOptions(backend="cuda")
        )
        with pytest.raises(ValueError, match="cuda"):
            sim.backend


class TestValidityEnvelope:
    def test_tcp_specs_rejected(self):
        builder = ScenarioBuilder("fluid-tcp").single_link().duration(5.0)
        builder.add_flow("a", "src-host", "dst-host")
        builder.tcp("t", "src-host", "dst-host")
        builder.disciplines(DisciplineSpec.fifo())
        spec = builder.build()
        with pytest.raises(ValueError, match="TCP"):
            FluidSimulation(spec, spec.disciplines[0])

    def test_outage_specs_rejected_with_kill_switch(self, monkeypatch):
        # Outage specs are supported since the fluid control plane;
        # REPRO_FLUID_OUTAGES=0 restores the old rejection for *active*
        # specs only.
        monkeypatch.setenv("REPRO_FLUID_OUTAGES", "0")
        spec = registry.build("gen:outage", gen_seed=1, duration=5.0)
        assert spec.outages is not None and spec.outages.is_active
        with pytest.raises(ValueError, match="outage"):
            FluidSimulation(spec, spec.disciplines[0])

    def test_outage_specs_supported_by_default(self):
        spec = registry.build("gen:outage", gen_seed=1, duration=5.0)
        sim = FluidSimulation(spec, spec.disciplines[0])
        assert sim.control_plan is not None

    def test_tcp_rejection_names_flows_and_remedy(self):
        builder = ScenarioBuilder("fluid-tcp").single_link().duration(5.0)
        builder.add_flow("a", "src-host", "dst-host")
        builder.tcp("tcp-b", "src-host", "dst-host")
        builder.tcp("tcp-a", "src-host", "dst-host")
        builder.disciplines(DisciplineSpec.fifo())
        spec = builder.build()
        with pytest.raises(ValueError) as excinfo:
            FluidSimulation(spec, spec.disciplines[0])
        message = str(excinfo.value)
        # Diagnostics name the offending flows (sorted), the spec, and
        # point at the packet engine as the remedy.
        assert "'tcp-a', 'tcp-b'" in message
        assert "'fluid-tcp'" in message
        assert 'engine="packet"' in message
        assert "REPRO_ENGINE=packet" in message

    def test_tcp_rejection_truncates_long_flow_lists(self):
        builder = ScenarioBuilder("fluid-tcp").single_link().duration(5.0)
        for i in range(8):
            builder.tcp(f"tcp-{i}", "src-host", "dst-host")
        builder.disciplines(DisciplineSpec.fifo())
        spec = builder.build()
        with pytest.raises(ValueError) as excinfo:
            FluidSimulation(spec, spec.disciplines[0])
        message = str(excinfo.value)
        assert "(8 total)" in message
        assert "'tcp-7'" not in message  # beyond the 5-name preview

    def test_outage_rejection_names_links_and_remedy(self, monkeypatch):
        monkeypatch.setenv("REPRO_FLUID_OUTAGES", "0")
        spec = registry.build("gen:outage", gen_seed=1, duration=5.0)
        out = spec.outages
        assert out is not None
        with pytest.raises(ValueError) as excinfo:
            FluidSimulation(spec, spec.disciplines[0])
        message = str(excinfo.value)
        assert f"{spec.name!r}" in message
        assert 'engine="packet"' in message
        assert "REPRO_FLUID_OUTAGES" in message
        if out.events:
            first = sorted({e.link for e in out.events})[0]
            assert repr(first) in message
        if out.rate_per_second:
            assert f"{out.rate_per_second:g}/s" in message

    def test_degenerate_outage_spec_not_gated(self, monkeypatch):
        # Bugfix: an inactive OutageSpec (no events, zero rate) must
        # build and run even with the kill switch thrown — it declares
        # nothing to simulate.
        import dataclasses

        from repro.scenario.spec import OutageSpec

        monkeypatch.setenv("REPRO_FLUID_OUTAGES", "0")
        builder = ScenarioBuilder("fluid-degen").single_link().duration(5.0)
        builder.add_flow("a", "src-host", "dst-host")
        builder.disciplines(DisciplineSpec.fifo())
        spec = dataclasses.replace(builder.build(), outages=OutageSpec())
        sim = FluidSimulation(spec, spec.disciplines[0])
        assert sim.control_plan is not None
        assert sim.control_plan.boundaries == ()
        assert sim.segments is None
