"""Property-grid bit-identity: engine fronts must be invisible to physics.

Generated scenarios (``gen:random-graph``, ``gen:wan-path``,
``gen:outage`` — the last one exercising control-plane failovers) are run
across every engine configuration {batched on/off} x {heap, calendar},
with validation invariants enabled.  Every configuration must produce an
*identical* ``DisciplineRunResult`` payload: the batched link service and
the calendar event store are pure hot-path mechanics, and any observable
divergence — a delay percentile, a drop count, an invariant verdict —
is a correctness bug, not a tuning difference.

(When the compiled core is built, the heap configurations additionally
run on it, so the grid also crosses compiled vs pure-Python.)
"""

import os

import pytest

from repro.scenario import ScenarioRunner, registry

# Short but non-trivial windows: long enough for queue buildup, outages
# (gen:outage schedules them after warmup), and multi-hop jitter.
DURATION = 3.0
WARMUP = 1.0

# gen:wan-guaranteed pins the WFQ batch drain: it compares CSZ against a
# WFQ discipline with installed guaranteed clock rates, so any divergence
# introduced by serving WFQ bursts arithmetically (virtual-time
# bookkeeping, tag assignment, P-G bound invariants) breaks the grid.
SCENARIOS = [
    "gen:random-graph",
    "gen:wan-path",
    "gen:outage",
    "gen:wan-guaranteed",
]

CONFIGS = [
    pytest.param("heap", False, id="heap-batched"),
    pytest.param("heap", True, id="heap-perpacket"),
    pytest.param("calendar", False, id="calendar-batched"),
    pytest.param("calendar", True, id="calendar-perpacket"),
]


def _run_grid_point(spec, queue, batching_off):
    overrides = {
        "REPRO_ENGINE_QUEUE": queue,
        "REPRO_BATCHED_LINKS": "0" if batching_off else "",
    }
    saved = {k: os.environ.get(k) for k in overrides}
    os.environ.update(overrides)
    try:
        runner = ScenarioRunner(spec)
        return [
            runner.run_discipline(d).comparable_dict()
            for d in spec.disciplines
        ]
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


@pytest.fixture(scope="module", params=SCENARIOS)
def scenario_payloads(request):
    """Run one generated scenario across the whole config grid."""
    kwargs = {"gen_seed": 3, "duration": DURATION, "warmup": WARMUP, "seed": 1}
    if request.param == "gen:outage":
        # Enough failures in the short post-warmup window that the grid
        # point really crosses batching with control-plane reroutes.
        kwargs.update(outage_rate_per_second=2.0, mean_outage_seconds=0.5)
    spec = registry.build(request.param, **kwargs)
    assert spec.validate, "generated scenarios must run with invariants on"
    payloads = {}
    for param in CONFIGS:
        queue, batching_off = param.values
        payloads[param.id] = _run_grid_point(spec, queue, batching_off)
    return request.param, spec, payloads


class TestBitIdentityGrid:
    def test_all_configs_identical(self, scenario_payloads):
        name, spec, payloads = scenario_payloads
        reference_id = "heap-perpacket"  # the pre-batching ground truth
        reference = payloads[reference_id]
        for config_id, payload in payloads.items():
            assert payload == reference, (
                f"{name}: engine config {config_id} diverged from "
                f"{reference_id}"
            )

    def test_invariants_present_and_clean(self, scenario_payloads):
        name, spec, payloads = scenario_payloads
        for config_id, payload in payloads.items():
            for run in payload:
                checks = run.get("invariants")
                assert checks, f"{name}/{config_id}: no invariant checks ran"
                bad = [c for c in checks if not c.get("ok", False)]
                assert not bad, f"{name}/{config_id}: {bad}"

    def test_outage_scenario_exercised_failover(self, scenario_payloads):
        """The outage grid point only means something if reroutes really
        happened under batching: assert the control-plane block is there."""
        name, spec, payloads = scenario_payloads
        if name != "gen:outage":
            pytest.skip("control-plane block only expected for gen:outage")
        for config_id, payload in payloads.items():
            for run in payload:
                control = run.get("control")
                assert control is not None, f"{config_id}: no control stats"
                assert control.get("outages", 0) > 0, (
                    f"{config_id}: outage scenario saw no outages"
                )
