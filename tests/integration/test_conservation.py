"""Network-wide packet conservation: nothing vanishes, nothing duplicates.

For every scheduler the library ships, run a loaded multi-hop simulation,
freeze the clock, and check the books balance exactly:

    sent by sources = delivered to sinks + dropped at ports
                      + lost on lossy wires + still queued + in flight.

This is the invariant every other measurement (delays, utilization, drop
rates) silently relies on; a scheduler that loses or duplicates a packet
corrupts every table downstream.
"""

import random

import pytest

from repro.experiments import common
from repro.net.packet import ServiceClass
from repro.net.topology import paper_figure1_topology
from repro.sched.fifo import FifoScheduler
from repro.sched.fifoplus import FifoPlusScheduler
from repro.sched.jacobson_floyd import JacobsonFloydScheduler
from repro.sched.nonwork import (
    HrrScheduler,
    JitterEddScheduler,
    StopAndGoScheduler,
)
from repro.sched.priority import PriorityScheduler
from repro.sched.round_robin import (
    DeficitRoundRobinScheduler,
    RoundRobinScheduler,
)
from repro.sched.unified import UnifiedConfig, UnifiedScheduler
from repro.sched.virtual_clock import VirtualClockScheduler
from repro.sched.wfq import WfqScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.onoff import OnOffMarkovSource
from repro.traffic.sink import DelayRecordingSink

DURATION = 20.0
SMALL_BUFFER = 30  # force drops so the drop path is exercised too


def scheduler_factories(sim):
    link_share = common.LINK_RATE_BPS / 10
    return {
        "FIFO": lambda n, l: FifoScheduler(),
        "FIFO+": lambda n, l: FifoPlusScheduler(),
        "WFQ": lambda n, l: WfqScheduler(
            l.rate_bps, auto_register_rate=link_share
        ),
        "VirtualClock": lambda n, l: VirtualClockScheduler(
            auto_register_rate=link_share
        ),
        "RR": lambda n, l: RoundRobinScheduler(),
        "DRR": lambda n, l: DeficitRoundRobinScheduler(),
        "Priority": lambda n, l: PriorityScheduler(
            num_classes=2, sub_scheduler_factory=FifoScheduler
        ),
        "Unified": lambda n, l: UnifiedScheduler(
            UnifiedConfig(capacity_bps=l.rate_bps, num_predicted_classes=2)
        ),
        "JacobsonFloyd": lambda n, l: JacobsonFloydScheduler(num_classes=2),
        "StopAndGo": lambda n, l: StopAndGoScheduler(sim, frame_seconds=0.05),
        "HRR": lambda n, l: HrrScheduler(
            sim, frame_seconds=0.05, default_slots=6
        ),
        "JitterEDD": lambda n, l: JitterEddScheduler(sim, default_target=0.1),
    }


def run_and_audit(name, buffer_packets=common.BUFFER_PACKETS):
    sim = Simulator()
    streams = RandomStreams(seed=3)
    factory = scheduler_factories(sim)[name]
    net = paper_figure1_topology(
        sim, factory, rate_bps=common.LINK_RATE_BPS,
        buffer_packets=buffer_packets,
    )
    placements = common.figure1_flow_placements()
    sources = []
    sinks = {}
    for placement in placements:
        sources.append(
            OnOffMarkovSource.paper_source(
                sim,
                net.hosts[placement.source_host],
                placement.name,
                placement.dest_host,
                streams.stream(f"source:{placement.name}"),
                service_class=ServiceClass.PREDICTED,
                priority_class=1,
            )
        )
        sinks[placement.name] = DelayRecordingSink(
            sim, net.hosts[placement.dest_host], placement.name, warmup=0.0
        )
    sim.run(until=DURATION)

    sent = sum(source.sent for source in sources)
    delivered = sum(sink.received for sink in sinks.values())
    dropped = net.total_drops()
    queued = sum(len(port.scheduler) for port in net.ports.values())
    wire_lost = sum(link.packets_lost for link in net.links.values())
    # In flight: a link that is busy holds exactly one packet.
    in_flight = sum(1 for link in net.links.values() if link.busy)
    return sent, delivered + dropped + queued + wire_lost + in_flight


ALL_SCHEDULERS = [
    "FIFO", "FIFO+", "WFQ", "VirtualClock", "RR", "DRR", "Priority",
    "Unified", "JacobsonFloyd", "StopAndGo", "HRR", "JitterEDD",
]


class TestConservation:
    @pytest.mark.parametrize("name", ALL_SCHEDULERS)
    def test_books_balance_with_ample_buffers(self, name):
        sent, accounted = run_and_audit(name)
        assert sent > 1000  # the workload really ran
        assert sent == accounted

    @pytest.mark.parametrize(
        "name", ["FIFO", "WFQ", "Unified", "JacobsonFloyd", "StopAndGo"]
    )
    def test_books_balance_under_buffer_pressure(self, name):
        """Tiny buffers force the drop path; conservation must still hold."""
        sent, accounted = run_and_audit(name, buffer_packets=SMALL_BUFFER)
        assert sent == accounted


class TestConservationWithWireLoss:
    def test_books_balance_on_lossy_links(self):
        sim = Simulator()
        streams = RandomStreams(seed=5)
        net = paper_figure1_topology(
            sim, lambda n, l: FifoScheduler(), rate_bps=common.LINK_RATE_BPS
        )
        for i, link in enumerate(net.links.values()):
            link.loss_probability = 0.05
            link._loss_rng = random.Random(100 + i)
        placements = common.figure1_flow_placements()
        sources = []
        sinks = {}
        for placement in placements:
            sources.append(
                OnOffMarkovSource.paper_source(
                    sim,
                    net.hosts[placement.source_host],
                    placement.name,
                    placement.dest_host,
                    streams.stream(f"source:{placement.name}"),
                )
            )
            sinks[placement.name] = DelayRecordingSink(
                sim, net.hosts[placement.dest_host], placement.name, warmup=0.0
            )
        sim.run(until=DURATION)
        sent = sum(source.sent for source in sources)
        delivered = sum(sink.received for sink in sinks.values())
        dropped = net.total_drops()
        queued = sum(len(port.scheduler) for port in net.ports.values())
        lost = sum(link.packets_lost for link in net.links.values())
        in_flight = sum(1 for link in net.links.values() if link.busy)
        assert lost > 100  # loss genuinely happened
        assert sent == delivered + dropped + queued + lost + in_flight
