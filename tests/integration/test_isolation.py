"""End-to-end isolation: a misbehaving flow cannot break commitments.

The paper's fundamental claim (Sections 4 and 12): "The network cannot
make any commitments if it cannot prevent the unexpected behavior of one
source from disrupting others."  These tests flood the unified scheduler
with traffic that violates every assumption and verify the victims'
guarantees still hold.
"""

import pytest

from repro.core.bounds import parekh_gallager_packet_bound
from repro.experiments import common
from repro.net.packet import ServiceClass
from repro.net.topology import paper_figure1_topology, single_link_topology
from repro.sched.unified import UnifiedConfig, UnifiedScheduler
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.onoff import OnOffMarkovSource, OnOffParams
from repro.traffic.sink import DelayRecordingSink

DURATION = 30.0
FLOOD = OnOffParams(
    average_rate_pps=400.0, mean_burst_packets=60.0, peak_rate_pps=950.0
)


def unified_net(sim, topology=single_link_topology, **kwargs):
    schedulers = []

    def factory(name, link):
        scheduler = UnifiedScheduler(
            UnifiedConfig(capacity_bps=link.rate_bps, num_predicted_classes=2)
        )
        schedulers.append(scheduler)
        return scheduler

    return topology(sim, factory, **kwargs), schedulers


class TestGuaranteedIsolation:
    def test_victim_bound_holds_against_flooding_datagrams(self, sim):
        """A guaranteed flow's P-G bound survives a datagram flood."""
        net, schedulers = unified_net(sim)
        rate = 170_000.0
        for scheduler in schedulers:
            scheduler.install_guaranteed_flow("victim", rate)
        streams = RandomStreams(seed=1)
        OnOffMarkovSource.paper_source(
            sim, net.hosts["src-host"], "victim", "dst-host",
            streams.stream("victim"),
            average_rate_pps=85.0,
            service_class=ServiceClass.GUARANTEED,
        )
        sink = DelayRecordingSink(
            sim, net.hosts["dst-host"], "victim", warmup=0.0
        )
        for i in range(3):
            OnOffMarkovSource(
                sim, net.hosts["src-host"], f"flood-{i}", "dst-host",
                FLOOD, streams.stream(f"flood-{i}"),
                service_class=ServiceClass.DATAGRAM,
            )
        net.hosts["dst-host"].default_handler = lambda packet: None
        sim.run(until=DURATION)
        bound = parekh_gallager_packet_bound(
            common.BUCKET_PACKETS * common.PACKET_BITS,
            rate,
            common.PACKET_BITS,
            [common.LINK_RATE_BPS],
        )
        assert sink.recorded > 1000
        assert sink.max_queueing(1.0) < bound

    def test_misbehaving_guaranteed_flow_hurts_only_itself(self, sim):
        """A guaranteed flow sending far beyond its clock rate builds its
        own queue; a well-behaved guaranteed peer stays fast."""
        net, schedulers = unified_net(sim, buffer_packets=400)
        for scheduler in schedulers:
            scheduler.install_guaranteed_flow("honest", 170_000.0)
            scheduler.install_guaranteed_flow("hog", 170_000.0)
        streams = RandomStreams(seed=3)
        OnOffMarkovSource.paper_source(
            sim, net.hosts["src-host"], "honest", "dst-host",
            streams.stream("honest"),
            average_rate_pps=85.0,
            service_class=ServiceClass.GUARANTEED,
        )
        # The hog ignores its characterization: 400 pkt/s against a
        # 170 kbit/s clock rate, no token bucket.
        OnOffMarkovSource(
            sim, net.hosts["src-host"], "hog", "dst-host",
            FLOOD, streams.stream("hog"),
            service_class=ServiceClass.GUARANTEED,
        )
        honest = DelayRecordingSink(
            sim, net.hosts["dst-host"], "honest", warmup=0.0
        )
        hog = DelayRecordingSink(sim, net.hosts["dst-host"], "hog", warmup=0.0)
        sim.run(until=DURATION)
        unit = common.TX_TIME_SECONDS
        assert honest.recorded > 1000
        # The honest flow rides its WFQ share, essentially undisturbed...
        assert honest.percentile_queueing(99.9, unit) < 60.0
        # ...while the hog's own backlog explodes.
        assert hog.percentile_queueing(99.9, unit) > 5.0 * honest.percentile_queueing(99.9, unit)

    def test_predicted_flood_cannot_starve_guaranteed(self, sim):
        net, schedulers = unified_net(sim)
        for scheduler in schedulers:
            scheduler.install_guaranteed_flow("victim", 170_000.0)
        streams = RandomStreams(seed=7)
        OnOffMarkovSource.paper_source(
            sim, net.hosts["src-host"], "victim", "dst-host",
            streams.stream("victim"),
            average_rate_pps=85.0,
            service_class=ServiceClass.GUARANTEED,
        )
        sink = DelayRecordingSink(
            sim, net.hosts["dst-host"], "victim", warmup=0.0
        )
        # The flood rides predicted class 1 (in the real architecture no
        # such flood survives the edge policer; class-0 floods could still
        # fill the shared buffer, which push-out does not reclaim from an
        # equal class).
        for i in range(3):
            OnOffMarkovSource(
                sim, net.hosts["src-host"], f"pflood-{i}", "dst-host",
                FLOOD, streams.stream(f"pflood-{i}"),
                service_class=ServiceClass.PREDICTED,
                priority_class=1,
            )
        net.hosts["dst-host"].default_handler = lambda packet: None
        sim.run(until=DURATION)
        # Throughput held: the victim delivered its offered load.
        assert sink.recorded > 0.9 * 85.0 * DURATION * 0.9


class TestDatagramQuotaEffect:
    def test_datagram_still_progresses_under_realtime_pressure(self, sim):
        """Real-time load within the unified scheduler's residual still
        lets datagram traffic trickle (it is never priority-starved
        forever because real-time flows are not saturating)."""
        net, schedulers = unified_net(sim)
        streams = RandomStreams(seed=9)
        for i in range(9):  # 9 x 85 = 765 pkt/s of predicted load
            OnOffMarkovSource.paper_source(
                sim, net.hosts["src-host"], f"rt-{i}", "dst-host",
                streams.stream(f"rt-{i}"),
                service_class=ServiceClass.PREDICTED,
                priority_class=0,
            )
            net.hosts["dst-host"].default_handler = lambda packet: None
        from repro.traffic.cbr import CbrSource

        CbrSource(
            sim, net.hosts["src-host"], "dgram", "dst-host", rate_pps=100.0
        )
        sink = DelayRecordingSink(
            sim, net.hosts["dst-host"], "dgram", warmup=0.0
        )
        sim.run(until=DURATION)
        # ~100 pkt/s offered; most get through the ~23% residual.
        assert sink.recorded > 0.8 * 100.0 * DURATION
