"""Batched link service: burst draining, fallbacks, and bit-identity.

The port may serve several queued packets inside one link-completion
event (arithmetic timestamps) *only* while no other pending event — and
no ``run(until=...)`` window edge — could observe the difference.  These
tests pin the counter bookkeeping, the adversarial mid-burst fallback,
the capability gate, and the env kill-switch.
"""

import math

import pytest

from repro.net.link import Link
from repro.net.node import Node
from repro.net.port import OutputPort
from repro.sched.fifo import FifoScheduler
from repro.sched.fifoplus import FifoPlusScheduler
from repro.sched.priority import PriorityScheduler
from repro.sched.nonwork import StopAndGoScheduler
from tests.conftest import make_packet


class Collector(Node):
    def __init__(self, sim, name="collector"):
        super().__init__(sim, name)
        self.packets = []

    def receive(self, packet):
        self.packets.append((self.sim.now, packet))


def build_port(sim, scheduler=None, rate_bps=1000.0):
    # rate 1000 bps and 1000-bit packets -> 1 s transmission each.
    link = Link(sim, "L", rate_bps=rate_bps)
    sink = Collector(sim)
    link.connect(sink)
    if scheduler is None:
        scheduler = FifoScheduler()
    port = OutputPort(sim, "P", scheduler, link, 200)
    return port, sink


class TestBurstDraining:
    def test_quiet_burst_is_batched(self, sim):
        """With no competing events, everything after the first packet is
        served arithmetically — identical delivery times, fewer events."""
        port, sink = build_port(sim)
        for i in range(6):
            port.enqueue(make_packet(sequence=i))
        sim.run_until_idle()
        assert [t for t, _ in sink.packets] == pytest.approx(
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0]
        )
        assert port.packets_out == 6
        # Packet 1 went through the normal transmit; 2..6 were drained in
        # the burst started by packet 1's completion event.
        assert port.batched_departures == 5
        # events: completion of packet 1 only (2..6 elided but counted).
        assert sim.events_processed == 6

    def test_departure_accounting_matches_per_packet_path(self, sim):
        port, sink = build_port(sim)
        packets = [make_packet(sequence=i) for i in range(4)]
        for packet in packets:
            port.enqueue(packet)
        sim.run_until_idle()
        # Waits: 0, 1, 2, 3 seconds (head-of-line blocking at 1 s each).
        assert [p.queueing_delay for p in packets] == pytest.approx(
            [0.0, 1.0, 2.0, 3.0]
        )
        assert all(p.hops == 1 for p in packets)
        assert port.queueing_delay_total == pytest.approx(6.0)
        assert port.link.utilization(sim.now) == pytest.approx(1.0)

    def test_on_depart_listeners_see_virtual_times(self, sim):
        port, sink = build_port(sim)
        departures = []
        port.on_depart.append(lambda p, now, wait: departures.append((now, wait)))
        for i in range(3):
            port.enqueue(make_packet(sequence=i))
        sim.run_until_idle()
        assert departures == [(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]


class TestAdversarialFallback:
    def test_competing_event_mid_burst_forces_per_packet(self, sim):
        """An event landing mid-burst must see the true clock: the burst
        stops exactly at the last provably-unobservable departure and the
        contested packet goes through the ordinary scheduled path."""
        port, sink = build_port(sim)
        observed = {}

        def competitor():
            observed["now"] = sim.now
            observed["busy"] = port.link.busy
            observed["delivered_so_far"] = len(sink.packets)

        sim.schedule(2.5, competitor)
        for i in range(5):
            port.enqueue(make_packet(sequence=i))
        sim.run_until_idle()
        # Everything still delivers at the exact per-packet times.
        assert [t for t, _ in sink.packets] == pytest.approx(
            [1.0, 2.0, 3.0, 4.0, 5.0]
        )
        # The competitor observed a mid-transmission clock, un-advanced.
        assert observed["now"] == 2.5
        assert observed["busy"] is True  # packet 3 on the wire via transmit
        assert observed["delivered_so_far"] == 2
        # Batched: packet 2 (before the competitor) and 4..5 (after the
        # contested completion re-entered the burst loop).
        assert port.batched_departures == 3

    def test_run_window_edge_forces_fallback(self, sim):
        """A run(until=...) horizon inside the would-be burst stops the
        arithmetic drain, and the sliced run matches the unsliced one."""
        port, sink = build_port(sim)
        for i in range(4):
            port.enqueue(make_packet(sequence=i))
        sim.run(until=2.5)
        assert sim.now == 2.5
        assert len(sink.packets) == 2  # 1.0s and 2.0s delivered
        sim.run_until_idle()
        assert [t for t, _ in sink.packets] == pytest.approx(
            [1.0, 2.0, 3.0, 4.0]
        )
        assert sim.events_processed == 4

    def test_depart_listener_scheduling_mid_span_forces_fallback(self, sim):
        """A depart listener that schedules an event inside the service
        span (legal: listeners run at the departure instant) must force
        the contested packet onto the scheduled path so the event fires
        mid-transmission, exactly as unbatched."""
        port, sink = build_port(sim)
        fired_at = []

        def listener(packet, now, wait):
            if packet.sequence == 1:
                # Lands halfway through packet 1's transmission span.
                sim.schedule(0.5, lambda: fired_at.append(sim.now))

        port.on_depart.append(listener)
        for i in range(3):
            port.enqueue(make_packet(sequence=i))
        sim.run_until_idle()
        assert fired_at == [1.5]
        assert [t for t, _ in sink.packets] == pytest.approx([1.0, 2.0, 3.0])


class TestCapabilityGate:
    def test_fifo_and_fifoplus_and_priority_opt_in(self, sim):
        for scheduler in (
            FifoScheduler(),
            FifoPlusScheduler(),
            PriorityScheduler(num_classes=2),
        ):
            port, _ = build_port(sim, scheduler=scheduler)
            assert port.batching_enabled, type(scheduler).__name__

    def test_non_work_conserving_stays_per_packet(self, sim):
        scheduler = StopAndGoScheduler(sim, frame_seconds=0.1)
        assert not scheduler.supports_batch_drain
        port, sink = build_port(sim, scheduler=scheduler)
        assert not port.batching_enabled
        assert port.link.on_complete_idle is None

    def test_priority_over_non_batchable_levels_stays_per_packet(self, sim):
        scheduler = PriorityScheduler(
            num_classes=2,
            sub_scheduler_factory=lambda: StopAndGoScheduler(sim, frame_seconds=0.1),
        )
        assert not scheduler.supports_batch_drain

    def test_env_kill_switch(self, sim, monkeypatch):
        monkeypatch.setenv("REPRO_BATCHED_LINKS", "0")
        port, sink = build_port(sim)
        assert not port.batching_enabled
        for i in range(4):
            port.enqueue(make_packet(sequence=i))
        sim.run_until_idle()
        assert port.batched_departures == 0
        assert [t for t, _ in sink.packets] == pytest.approx(
            [1.0, 2.0, 3.0, 4.0]
        )
        assert sim.events_processed == 4  # all completions were real events


class TestBitIdentityOnAndOff:
    def _drive(self, sim, port, sink):
        """A busy little schedule: staggered arrivals, an idle gap, and a
        timer landing mid-burst."""
        mid = []
        for i in range(5):
            sim.schedule(0.1 * i, lambda i=i: port.enqueue(make_packet(sequence=i)))
        sim.schedule(2.3, lambda: mid.append(sim.now))
        for i in range(5, 8):
            sim.schedule(9.0 + 0.05 * i, lambda i=i: port.enqueue(make_packet(sequence=i)))
        sim.run_until_idle()
        return (
            [(t, p.sequence, p.queueing_delay) for t, p in sink.packets],
            mid,
            port.packets_out,
            sim.events_processed,
        )

    def test_batched_equals_unbatched(self, monkeypatch):
        from repro.sim import Simulator

        sim_on = Simulator()
        port_on, sink_on = build_port(sim_on)
        result_on = self._drive(sim_on, port_on, sink_on)

        monkeypatch.setenv("REPRO_BATCHED_LINKS", "0")
        sim_off = Simulator()
        port_off, sink_off = build_port(sim_off)
        result_off = self._drive(sim_off, port_off, sink_off)

        assert result_on == result_off
        assert port_on.batched_departures > 0
        assert port_off.batched_departures == 0
