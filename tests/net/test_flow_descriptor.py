"""Tests for network-level flow descriptors."""

from repro.net.flow import FlowDescriptor
from repro.net.packet import ServiceClass


def descriptor(path):
    return FlowDescriptor(
        flow_id="f",
        source=path[0] if path else "h1",
        destination=path[-1] if path else "h2",
        service_class=ServiceClass.PREDICTED,
        path=list(path),
    )


class TestHopCounts:
    def test_empty_path(self):
        d = descriptor([])
        assert d.hop_count == 0
        assert d.inter_switch_hops() == 0

    def test_figure1_four_hop_flow(self):
        d = descriptor(
            ["Host-1", "S-1", "S-2", "S-3", "S-4", "S-5", "Host-5"]
        )
        assert d.hop_count == 6
        assert d.inter_switch_hops() == 4

    def test_one_hop_flow(self):
        d = descriptor(["Host-1", "S-1", "S-2", "Host-2"])
        assert d.inter_switch_hops() == 1

    def test_same_switch_hosts(self):
        d = descriptor(["Host-1", "S-1", "Host-1b"])
        assert d.inter_switch_hops() == 0

    def test_defaults(self):
        d = descriptor(["Host-1", "S-1", "S-2", "Host-2"])
        assert d.priority_class == 0
        assert d.clock_rate_bps is None
