"""Tests for Link transmission timing and utilization accounting."""

import pytest

from repro.net.link import Link
from repro.net.node import Node
from tests.conftest import make_packet


class Collector(Node):
    """Records (time, packet) deliveries."""

    def __init__(self, sim, name="collector"):
        super().__init__(sim, name)
        self.deliveries = []

    def receive(self, packet):
        self.deliveries.append((self.sim.now, packet))


class TestLink:
    def test_transmission_time(self, sim):
        link = Link(sim, "L", rate_bps=1_000_000)
        assert link.transmission_time(make_packet(size_bits=1000)) == pytest.approx(
            0.001
        )

    def test_delivery_after_transmission(self, sim):
        link = Link(sim, "L", rate_bps=1_000_000)
        sink = Collector(sim)
        link.connect(sink)
        packet = make_packet()
        sim.schedule(0.0, lambda: link.transmit(packet))
        sim.run_until_idle()
        assert len(sink.deliveries) == 1
        t, delivered = sink.deliveries[0]
        assert delivered is packet
        assert t == pytest.approx(0.001)

    def test_propagation_delay_added(self, sim):
        link = Link(sim, "L", rate_bps=1_000_000, propagation_delay=0.05)
        sink = Collector(sim)
        link.connect(sink)
        sim.schedule(0.0, lambda: link.transmit(make_packet()))
        sim.run_until_idle()
        assert sink.deliveries[0][0] == pytest.approx(0.051)

    def test_busy_rejects_second_transmit(self, sim):
        link = Link(sim, "L", rate_bps=1_000_000)
        link.connect(Collector(sim))
        link.transmit(make_packet())
        with pytest.raises(RuntimeError):
            link.transmit(make_packet())

    def test_unconnected_rejects(self, sim):
        link = Link(sim, "L", rate_bps=1_000_000)
        with pytest.raises(RuntimeError):
            link.transmit(make_packet())

    def test_on_idle_fires_after_completion(self, sim):
        link = Link(sim, "L", rate_bps=1_000_000)
        link.connect(Collector(sim))
        idle_times = []
        link.on_idle = lambda: idle_times.append(sim.now)
        sim.schedule(0.0, lambda: link.transmit(make_packet()))
        sim.run_until_idle()
        assert idle_times == [pytest.approx(0.001)]

    def test_utilization_half_busy(self, sim):
        link = Link(sim, "L", rate_bps=1_000_000)
        link.connect(Collector(sim))
        # 1 ms transmission starting at t=0; observe at t=2 ms.
        sim.schedule(0.0, lambda: link.transmit(make_packet()))
        sim.run(until=0.002)
        assert link.utilization() == pytest.approx(0.5)

    def test_counters(self, sim):
        link = Link(sim, "L", rate_bps=1_000_000)
        link.connect(Collector(sim))
        sim.schedule(0.0, lambda: link.transmit(make_packet(size_bits=500)))
        sim.run_until_idle()
        assert link.packets_sent == 1
        assert link.bits_sent == 500

    def test_reset_utilization(self, sim):
        link = Link(sim, "L", rate_bps=1_000_000)
        link.connect(Collector(sim))
        sim.schedule(0.0, lambda: link.transmit(make_packet()))
        sim.run(until=0.001)
        link.reset_utilization()
        sim.run(until=0.002)
        assert link.utilization() == pytest.approx(0.0)
        assert link.packets_sent == 0

    def test_invalid_parameters(self, sim):
        with pytest.raises(ValueError):
            Link(sim, "L", rate_bps=0)
        with pytest.raises(ValueError):
            Link(sim, "L", rate_bps=1e6, propagation_delay=-1.0)
