"""Failure-injection tests: random on-wire loss (Link.loss_probability)."""

import random

import pytest

from repro.net.link import Link
from repro.net.node import Host, Switch
from repro.net.topology import chain_topology
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.transport.tcp import TcpConfig, TcpConnection
from tests.conftest import make_packet


class TestLossValidation:
    def test_rejects_bad_probability(self, sim):
        with pytest.raises(ValueError):
            Link(sim, "l", 1e6, loss_probability=1.0, loss_rng=random.Random(1))
        with pytest.raises(ValueError):
            Link(sim, "l", 1e6, loss_probability=-0.1, loss_rng=random.Random(1))

    def test_requires_rng_when_lossy(self, sim):
        with pytest.raises(ValueError):
            Link(sim, "l", 1e6, loss_probability=0.1)

    def test_lossless_by_default(self, sim):
        link = Link(sim, "l", 1e6)
        assert link.loss_probability == 0.0


class TestLossBehaviour:
    def make_lossy_pair(self, sim, probability, seed=1):
        """A single-link net whose A->B link corrupts packets randomly."""
        from repro.net.topology import single_link_topology

        net = single_link_topology(
            sim, lambda n, l: FifoScheduler(), buffer_packets=500
        )
        link = net.links["A->B"]
        link.loss_probability = probability
        link._loss_rng = random.Random(seed)
        return link, net.port_for_link("A->B"), net.hosts["src-host"], net.hosts["dst-host"]

    def test_loss_rate_statistically_close(self, sim):
        link, port, src, dst = self.make_lossy_pair(sim, probability=0.2)
        received = []
        dst.register_flow_handler("f", lambda packet: received.append(packet))
        # Pace arrivals at the link rate so the buffer never overflows —
        # all loss must come from the wire, not the queue.
        for i in range(2000):
            sim.schedule(
                i * 0.001,
                lambda seq=i: port.enqueue(
                    make_packet(flow_id="f", sequence=seq,
                                destination="dst-host")
                ),
            )
        sim.run(until=30.0)
        assert link.packets_lost + len(received) == 2000
        # Binomial(2000, 0.2): mean 400, sd ~18; allow 5 sigma.
        assert 310 < link.packets_lost < 490

    def test_lost_packets_still_occupy_the_wire(self, sim):
        """Corruption costs the transmission time; utilization counts it."""
        link, port, src, dst = self.make_lossy_pair(sim, probability=0.5)
        dst.register_flow_handler("f", lambda packet: None)
        for i in range(100):
            port.enqueue(make_packet(flow_id="f", sequence=i,
                                     destination="dst-host"))
        sim.run(until=0.11)  # 100 back-to-back packets need 100 ms
        assert link.utilization(0.1) == pytest.approx(1.0, abs=0.02)
        assert link.packets_sent == 100

    def test_deterministic_given_seed(self, sim):
        losses = []
        for _attempt in range(2):
            inner = Simulator()
            link, port, src, dst = self.make_lossy_pair(
                inner, probability=0.3, seed=42
            )
            dst.register_flow_handler("f", lambda packet: None)
            for i in range(500):
                port.enqueue(make_packet(flow_id="f", sequence=i,
                                         destination="dst-host"))
            inner.run(until=10.0)
            losses.append(link.packets_lost)
        assert losses[0] == losses[1]


class TestTcpUnderRandomLoss:
    def test_tcp_survives_lossy_path(self, sim):
        """TCP keeps delivering a contiguous stream through 2 % random
        loss — the recovery machinery handles non-congestion loss too."""
        net = chain_topology(
            sim,
            lambda n, l: FifoScheduler(),
            num_switches=2,
            duplex=True,
            switch_names=["A", "B"],
            host_names=["ha", "hb"],
        )
        # Inject loss on the forward (data) direction only.
        forward = net.links["A->B"]
        forward.loss_probability = 0.02
        forward._loss_rng = random.Random(7)
        conn = TcpConnection(
            sim, net.hosts["ha"], net.hosts["hb"], "tcp", TcpConfig()
        )
        sim.run(until=20.0)
        assert forward.packets_lost > 10  # loss really happened
        assert conn.retransmits >= forward.packets_lost * 0.5
        # Contiguous delivery despite it.
        assert conn.segments_delivered == conn.recv_next
        assert conn.segments_delivered > 1000
