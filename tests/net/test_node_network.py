"""Tests for hosts, switches, the Network builder, and topologies."""

import pytest

from repro.net.network import Network
from repro.net.packet import Packet
from repro.net.topology import (
    chain_topology,
    paper_figure1_topology,
    single_link_topology,
)
from repro.sched.fifo import FifoScheduler
from tests.conftest import make_packet


def fifo_factory(name, link):
    return FifoScheduler()


class TestHostSwitch:
    def test_host_to_host_delivery(self, sim):
        net = single_link_topology(sim, fifo_factory)
        received = []
        net.hosts["dst-host"].register_flow_handler(
            "f", lambda packet: received.append(packet)
        )
        packet = make_packet(flow_id="f", source="src-host", destination="dst-host")
        net.hosts["src-host"].send(packet)
        sim.run_until_idle()
        assert received == [packet]

    def test_local_delivery_is_instant(self, sim):
        # Host on same switch: no link transmission, delivered at send time.
        net = single_link_topology(sim, fifo_factory)
        net.add_host("other", "A")
        received = []
        net.hosts["other"].register_flow_handler(
            "f", lambda packet: received.append(sim.now)
        )
        sim.schedule(
            1.0,
            lambda: net.hosts["src-host"].send(
                make_packet(flow_id="f", destination="other")
            ),
        )
        sim.run_until_idle()
        assert received == [1.0]

    def test_default_handler_catches_unregistered_flows(self, sim):
        net = single_link_topology(sim, fifo_factory)
        caught = []
        net.hosts["dst-host"].default_handler = lambda packet: caught.append(packet)
        net.hosts["src-host"].send(make_packet(flow_id="???", destination="dst-host"))
        sim.run_until_idle()
        assert len(caught) == 1

    def test_duplicate_flow_handler_rejected(self, sim):
        net = single_link_topology(sim, fifo_factory)
        net.hosts["dst-host"].register_flow_handler("f", lambda p: None)
        with pytest.raises(ValueError):
            net.hosts["dst-host"].register_flow_handler("f", lambda p: None)

    def test_unattached_host_cannot_send(self, sim):
        from repro.net.node import Host

        host = Host(sim, "loner")
        with pytest.raises(RuntimeError):
            host.send(make_packet())

    def test_multi_hop_forwarding(self, sim):
        net = chain_topology(sim, fifo_factory, num_switches=4)
        received = []
        net.hosts["Host-4"].register_flow_handler(
            "f", lambda packet: received.append((sim.now, packet.hops))
        )
        net.hosts["Host-1"].send(
            make_packet(flow_id="f", source="Host-1", destination="Host-4")
        )
        sim.run_until_idle()
        # Three inter-switch links, 1 ms each, no queueing.
        t, hops = received[0]
        assert t == pytest.approx(0.003)
        assert hops == 3


class TestNetworkBuilder:
    def test_duplicate_names_rejected(self, sim):
        net = Network(sim, fifo_factory)
        net.add_switch("A")
        with pytest.raises(ValueError):
            net.add_switch("A")
        net.add_host("h", "A")
        with pytest.raises(ValueError):
            net.add_switch("h")

    def test_duplicate_link_rejected(self, sim):
        net = Network(sim, fifo_factory)
        net.add_switch("A")
        net.add_switch("B")
        net.add_link("A", "B")
        with pytest.raises(ValueError):
            net.add_link("A", "B")

    def test_path_between_hosts(self, sim):
        net = chain_topology(sim, fifo_factory, num_switches=3)
        assert net.path("Host-1", "Host-3") == [
            "Host-1", "S-1", "S-2", "S-3", "Host-3",
        ]

    def test_links_on_path(self, sim):
        net = chain_topology(sim, fifo_factory, num_switches=3)
        names = [link.name for link in net.links_on_path("Host-1", "Host-3")]
        assert names == ["S-1->S-2", "S-2->S-3"]

    def test_total_drops_aggregates(self, sim):
        net = single_link_topology(sim, fifo_factory, rate_bps=1000)
        net.hosts["dst-host"].default_handler = lambda p: None
        # 1000 bps link, 1000-bit packets: massive overload drops packets.
        for _ in range(400):
            net.hosts["src-host"].send(make_packet(destination="dst-host"))
        assert net.total_drops() > 0


class TestTopologies:
    def test_figure1_shape(self, sim):
        net = paper_figure1_topology(sim, fifo_factory)
        assert len(net.switches) == 5
        assert len(net.hosts) == 5
        assert len(net.links) == 4  # simplex chain

    def test_figure1_duplex(self, sim):
        net = paper_figure1_topology(sim, fifo_factory, duplex=True)
        assert len(net.links) == 8

    def test_chain_validation(self, sim):
        with pytest.raises(ValueError):
            chain_topology(sim, fifo_factory, num_switches=1)
        with pytest.raises(ValueError):
            chain_topology(
                sim, fifo_factory, num_switches=3, switch_names=["only-one"]
            )
