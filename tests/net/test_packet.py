"""Tests for Packet and ServiceClass."""

from repro.net.packet import Packet, ServiceClass
from tests.conftest import make_packet


class TestServiceClass:
    def test_realtime_classification(self):
        assert ServiceClass.GUARANTEED.is_realtime
        assert ServiceClass.PREDICTED.is_realtime
        assert not ServiceClass.DATAGRAM.is_realtime


class TestPacket:
    def test_ids_are_unique(self):
        a = make_packet()
        b = make_packet()
        assert a.packet_id != b.packet_id

    def test_queueing_key_subtracts_offset(self):
        packet = make_packet(enqueued_at=10.0)
        packet.jitter_offset = 2.0
        # Delayed more than average upstream -> treated as arriving earlier.
        assert packet.queueing_key() == 8.0

    def test_queueing_key_negative_offset(self):
        packet = make_packet(enqueued_at=10.0)
        packet.jitter_offset = -3.0
        assert packet.queueing_key() == 13.0

    def test_defaults(self):
        packet = make_packet()
        assert packet.jitter_offset == 0.0
        assert packet.queueing_delay == 0.0
        assert packet.hops == 0
        assert not packet.tagged

    def test_payload_roundtrip(self):
        packet = Packet(
            flow_id="f",
            size_bits=1000,
            created_at=0.0,
            source="a",
            destination="b",
            payload={"type": "data", "seq": 7},
        )
        assert packet.payload["seq"] == 7
