"""Tests for OutputPort: buffering, drops, filters, delay accounting."""

import pytest

from repro.net.link import Link
from repro.net.node import Node
from repro.net.port import OutputPort
from repro.sched.fifo import FifoScheduler
from tests.conftest import make_packet


class Collector(Node):
    def __init__(self, sim, name="collector"):
        super().__init__(sim, name)
        self.packets = []

    def receive(self, packet):
        self.packets.append((self.sim.now, packet))


def build_port(sim, buffer_packets=200, rate_bps=1_000_000):
    link = Link(sim, "L", rate_bps=rate_bps)
    sink = Collector(sim)
    link.connect(sink)
    port = OutputPort(sim, "P", FifoScheduler(), link, buffer_packets)
    return port, sink


class TestEnqueueTransmit:
    def test_idle_port_transmits_immediately(self, sim):
        port, sink = build_port(sim)
        assert port.enqueue(make_packet())
        sim.run_until_idle()
        assert len(sink.packets) == 1
        assert sink.packets[0][0] == pytest.approx(0.001)

    def test_back_to_back_packets_serialize(self, sim):
        port, sink = build_port(sim)
        for _ in range(3):
            port.enqueue(make_packet())
        sim.run_until_idle()
        times = [t for t, _ in sink.packets]
        assert times == pytest.approx([0.001, 0.002, 0.003])

    def test_queueing_delay_accumulates_on_packet(self, sim):
        port, sink = build_port(sim)
        first = make_packet()
        second = make_packet()
        port.enqueue(first)
        port.enqueue(second)
        sim.run_until_idle()
        # First waited 0; second waited one transmission time.
        assert first.queueing_delay == pytest.approx(0.0)
        assert second.queueing_delay == pytest.approx(0.001)

    def test_hops_incremented(self, sim):
        port, sink = build_port(sim)
        packet = make_packet()
        port.enqueue(packet)
        sim.run_until_idle()
        assert packet.hops == 1


class TestBuffering:
    def test_tail_drop_when_full(self, sim):
        port, sink = build_port(sim, buffer_packets=2)
        # One packet goes straight to the wire; two fill the buffer.
        accepted = [port.enqueue(make_packet()) for _ in range(4)]
        assert accepted == [True, True, True, False]
        assert port.packets_dropped == 1
        sim.run_until_idle()
        assert len(sink.packets) == 3

    def test_drop_listener_called(self, sim):
        port, sink = build_port(sim, buffer_packets=1)
        dropped = []
        port.on_drop.append(lambda packet, now: dropped.append(packet))
        for _ in range(3):
            port.enqueue(make_packet())
        assert len(dropped) == 1

    def test_counters(self, sim):
        port, sink = build_port(sim, buffer_packets=1)
        for _ in range(3):
            port.enqueue(make_packet())
        sim.run_until_idle()
        assert port.packets_in == 3
        assert port.packets_out == 2
        assert port.packets_dropped == 1

    def test_invalid_buffer_size(self, sim):
        link = Link(sim, "L", rate_bps=1e6)
        with pytest.raises(ValueError):
            OutputPort(sim, "P", FifoScheduler(), link, buffer_packets=0)


class TestFilters:
    def test_filter_can_drop(self, sim):
        port, sink = build_port(sim)
        port.filters.append(lambda packet, now: packet.flow_id != "bad")
        assert port.enqueue(make_packet(flow_id="good"))
        assert not port.enqueue(make_packet(flow_id="bad"))
        assert port.packets_dropped == 1

    def test_filters_run_in_order_and_short_circuit(self, sim):
        port, sink = build_port(sim)
        calls = []
        port.filters.append(lambda p, t: (calls.append("first"), False)[1])
        port.filters.append(lambda p, t: (calls.append("second"), True)[1])
        port.enqueue(make_packet())
        assert calls == ["first"]


class TestListeners:
    def test_enqueue_and_depart_listeners(self, sim):
        port, sink = build_port(sim)
        enqueued, departed = [], []
        port.on_enqueue.append(lambda p, t: enqueued.append(t))
        port.on_depart.append(lambda p, t, wait: departed.append((t, wait)))
        port.enqueue(make_packet())
        port.enqueue(make_packet())
        sim.run_until_idle()
        assert len(enqueued) == 2
        assert departed[0] == (pytest.approx(0.0), pytest.approx(0.0))
        assert departed[1] == (pytest.approx(0.001), pytest.approx(0.001))
