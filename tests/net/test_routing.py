"""Tests for static BFS routing."""

import pytest

from repro.net.routing import RoutingError, StaticRouting


def chain(n):
    routing = StaticRouting()
    for i in range(n - 1):
        routing.add_edge(f"S{i}", f"S{i + 1}")
    return routing


class TestNextHop:
    def test_direct_neighbor(self):
        routing = chain(3)
        assert routing.next_hop("S0", "S1") == "S1"

    def test_multi_hop(self):
        routing = chain(5)
        assert routing.next_hop("S0", "S4") == "S1"
        assert routing.next_hop("S2", "S4") == "S3"

    def test_directedness(self):
        routing = chain(3)
        with pytest.raises(RoutingError):
            routing.next_hop("S2", "S0")  # no reverse edges

    def test_no_route(self):
        routing = StaticRouting()
        routing.add_edge("A", "B")
        routing.add_node("C")
        with pytest.raises(RoutingError):
            routing.next_hop("A", "C")

    def test_shortest_path_preferred(self):
        routing = StaticRouting()
        # Two routes A->D: direct edge and a 2-hop path.
        routing.add_edge("A", "B")
        routing.add_edge("B", "D")
        routing.add_edge("A", "D")
        assert routing.next_hop("A", "D") == "D"

    def test_deterministic_tie_break(self):
        # Two equal-length paths; BFS with sorted neighbours must always
        # pick the alphabetically first branch.
        routing = StaticRouting()
        routing.add_edge("A", "C")
        routing.add_edge("A", "B")
        routing.add_edge("B", "D")
        routing.add_edge("C", "D")
        assert routing.next_hop("A", "D") == "B"

    def test_recompute_after_edge_added(self):
        routing = StaticRouting()
        routing.add_edge("A", "B")
        assert routing.next_hop("A", "B") == "B"
        routing.add_edge("B", "C")
        assert routing.next_hop("A", "C") == "B"


class TestPath:
    def test_full_path(self):
        routing = chain(4)
        assert routing.path("S0", "S3") == ["S0", "S1", "S2", "S3"]

    def test_trivial_path(self):
        routing = chain(2)
        assert routing.path("S0", "S0") == ["S0"]


class TestBranchingAndMergeGraphs:
    """Routing over the graph shapes the declarative topology layer opened
    up: branches, merges, duplex edges, and diamonds."""

    def merge(self):
        # L1 \
        #     M -- R1 -- R2   (two access branches converge at M)
        # L2 /
        routing = StaticRouting()
        routing.add_edge("L1", "M")
        routing.add_edge("L2", "M")
        routing.add_edge("M", "R1")
        routing.add_edge("R1", "R2")
        return routing

    def test_merge_point_shared_by_both_branches(self):
        routing = self.merge()
        assert routing.path("L1", "R2") == ["L1", "M", "R1", "R2"]
        assert routing.path("L2", "R2") == ["L2", "M", "R1", "R2"]

    def test_branches_cannot_reach_each_other(self):
        # All edges point toward the sink; the branches are not peers.
        with pytest.raises(RoutingError):
            self.merge().next_hop("L1", "L2")

    def test_duplex_edges_route_both_directions(self):
        routing = StaticRouting()
        for a, b in [("A", "B"), ("B", "C")]:
            routing.add_edge(a, b)
            routing.add_edge(b, a)
        assert routing.path("A", "C") == ["A", "B", "C"]
        assert routing.path("C", "A") == ["C", "B", "A"]

    def test_duplex_edge_added_twice_is_idempotent(self):
        routing = StaticRouting()
        routing.add_edge("A", "B")
        routing.add_edge("A", "B")
        routing.add_edge("B", "A")
        assert routing.path("A", "B") == ["A", "B"]
        assert routing.path("B", "A") == ["B", "A"]

    def test_diamond_tie_break_is_deterministic_from_every_node(self):
        #     X -- T1 \
        # S <             > D   (two equal two-hop routes S -> D)
        #     Y -- T2 /
        routing = StaticRouting()
        for src, dst in [
            ("S", "Y"), ("S", "X"), ("X", "T1"), ("Y", "T2"),
            ("T1", "D"), ("T2", "D"),
        ]:
            routing.add_edge(src, dst)
        # BFS expands sorted neighbours: the X branch wins every rebuild.
        for _ in range(3):
            routing.add_node("Z")  # dirty the table; force recompute
            assert routing.path("S", "D") == ["S", "X", "T1", "D"]

    def test_unreachable_destination_names_both_endpoints(self):
        routing = self.merge()
        routing.add_node("island")
        with pytest.raises(RoutingError, match="L1 to island"):
            routing.next_hop("L1", "island")
