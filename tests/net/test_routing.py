"""Tests for static BFS routing."""

import pytest

from repro.net.routing import RoutingError, StaticRouting


def chain(n):
    routing = StaticRouting()
    for i in range(n - 1):
        routing.add_edge(f"S{i}", f"S{i + 1}")
    return routing


class TestNextHop:
    def test_direct_neighbor(self):
        routing = chain(3)
        assert routing.next_hop("S0", "S1") == "S1"

    def test_multi_hop(self):
        routing = chain(5)
        assert routing.next_hop("S0", "S4") == "S1"
        assert routing.next_hop("S2", "S4") == "S3"

    def test_directedness(self):
        routing = chain(3)
        with pytest.raises(RoutingError):
            routing.next_hop("S2", "S0")  # no reverse edges

    def test_no_route(self):
        routing = StaticRouting()
        routing.add_edge("A", "B")
        routing.add_node("C")
        with pytest.raises(RoutingError):
            routing.next_hop("A", "C")

    def test_shortest_path_preferred(self):
        routing = StaticRouting()
        # Two routes A->D: direct edge and a 2-hop path.
        routing.add_edge("A", "B")
        routing.add_edge("B", "D")
        routing.add_edge("A", "D")
        assert routing.next_hop("A", "D") == "D"

    def test_deterministic_tie_break(self):
        # Two equal-length paths; BFS with sorted neighbours must always
        # pick the alphabetically first branch.
        routing = StaticRouting()
        routing.add_edge("A", "C")
        routing.add_edge("A", "B")
        routing.add_edge("B", "D")
        routing.add_edge("C", "D")
        assert routing.next_hop("A", "D") == "B"

    def test_recompute_after_edge_added(self):
        routing = StaticRouting()
        routing.add_edge("A", "B")
        assert routing.next_hop("A", "B") == "B"
        routing.add_edge("B", "C")
        assert routing.next_hop("A", "C") == "B"


class TestPath:
    def test_full_path(self):
        routing = chain(4)
        assert routing.path("S0", "S3") == ["S0", "S1", "S2", "S3"]

    def test_trivial_path(self):
        routing = chain(2)
        assert routing.path("S0", "S0") == ["S0"]
