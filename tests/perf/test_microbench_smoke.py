"""Smoke tests for the perf microbench suite.

Tiny workloads only — these exist so the benches and the report tool keep
importing and producing sane measurements, not to measure anything.  CI
runs the real (still short) suite via ``tools/perf_report.py --quick``.
"""

import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.perf import microbench, sweepbench  # noqa: E402


class TestMicrobenches:
    def test_raw_events(self):
        result = microbench.bench_raw_events(total_events=2000, chains=8)
        assert result["events"] >= 2000
        assert result["events_per_sec"] > 0

    def test_timer_churn(self):
        result = microbench.bench_timer_churn(ops=2000)
        assert result["ops"] == 2000
        assert result["churn_per_sec"] > 0

    def test_scheduler_packets(self):
        out = microbench.bench_scheduler_packets(duration=1.0)
        assert set(out) == {"FIFO", "FIFO+", "WFQ", "CSZ"}
        for row in out.values():
            assert row["packets"] > 0
            assert row["packets_per_sec"] > 0

    def test_table_benches(self):
        assert microbench.bench_table1(duration=1.0)["wall_seconds"] > 0
        assert microbench.bench_table3(duration=1.0)["wall_seconds"] > 0


class TestSweepbench:
    def test_wide_sweep(self):
        row = sweepbench.bench_wide_sweep(
            duration=1.0, seed_count=2, workers=2
        )
        assert row["runs"] == 2 and row["tasks"] == 6
        assert row["wall_seconds"] > 0 and row["tasks_per_sec"] > 0

    def test_ladder_reports_decision_point(self):
        row = sweepbench.bench_ladder_to_decision(
            duration=1.0, seed_count=8, workers=2
        )
        assert row["seeds_available"] == 8
        assert (
            row["runs_completed"] + row["runs_stopped"]
            == row["seeds_available"]
        )
        assert row["runs_completed"] >= sweepbench.CI_MIN_RUNS

    def test_task_overhead_uses_one_pool(self):
        row = sweepbench.bench_task_overhead(
            duration=0.25, seed_count=2, repeats=2, workers=2
        )
        assert row["pools_created"] == 1
        assert row["tasks"] == 12

    def test_task_pickle_deltas_are_small(self):
        row = sweepbench.bench_task_pickle(duration=1.0)
        assert (
            row["executor_bytes_per_task"] * 5 < row["legacy_bytes_per_task"]
        )

    def test_legacy_sweep_matches_executor_results(self):
        """The vendored baseline and the executor agree bit-for-bit, so
        the benchmark compares identical work."""
        from repro.scenario import sweep

        spec = sweepbench.sweep_spec(duration=2.0)
        legacy = sweepbench.legacy_sweep(spec, seeds=[1, 2], workers=2)
        current = sweep(spec, seeds=[1, 2], workers=2)
        assert [r.comparable_dict() for r in legacy] == [
            r.comparable_dict() for r in current
        ]


class TestPerfReport:
    def test_baseline_file_is_wellformed(self):
        with open(REPO_ROOT / "benchmarks" / "perf" / "baseline_pre_fastpath.json") as handle:
            baseline = json.load(handle)
        measurements = baseline["measurements"]
        assert measurements["raw_events"]["events_per_sec"] > 0
        assert measurements["timer_churn"]["churn_per_sec"] > 0
        assert measurements["table1"]["wall_seconds"] > 0

    def test_report_tool_end_to_end(self, tmp_path):
        """The CI entry point produces a parseable report with speedups."""
        out = tmp_path / "BENCH_core.json"
        subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "perf_report.py"),
             "--quick", "--out", str(out)],
            check=True,
            timeout=600,
        )
        report = json.loads(out.read_text())
        assert report["quick"] is True
        assert "raw_events_per_sec" in report["speedup"]
        assert report["current"]["raw_events"]["events_per_sec"] > 0

    def test_sweep_baseline_file_is_wellformed(self):
        path = (
            REPO_ROOT / "benchmarks" / "perf"
            / "baseline_sweep_precall_pool.json"
        )
        with open(path) as handle:
            baseline = json.load(handle)
        measurements = baseline["measurements"]
        assert measurements["wide_sweep"]["runs"] >= 24
        assert measurements["wide_sweep"]["disciplines"] >= 3
        assert measurements["wide_sweep"]["workers"] == 4
        assert measurements["wide_sweep"]["wall_seconds"] > 0
        # The baseline model cannot stop early: its decision wall clock
        # is the full ladder.
        assert (
            measurements["ladder_to_decision"]["runs_completed"]
            == measurements["ladder_to_decision"]["seeds_available"]
        )
        assert measurements["task_pickle"]["bytes_per_task"] > 0

    def test_tracked_sweep_report_shows_decision_speedup(self):
        """BENCH_sweep.json's recorded point must keep the headline the
        PR claims: >=2x to the same statistical decision."""
        with open(REPO_ROOT / "BENCH_sweep.json") as handle:
            report = json.load(handle)
        assert report["suite"] == "sweep"
        assert report["quick"] is False
        assert report["speedup"]["wide_sweep_to_decision"] >= 2.0
        assert report["speedup"]["task_pickle_bytes"] > 5.0

    def test_sweep_report_tool_end_to_end(self, tmp_path):
        out = tmp_path / "BENCH_sweep.json"
        subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "perf_report.py"),
             "--suite", "sweep", "--quick", "--out", str(out)],
            check=True,
            timeout=600,
        )
        report = json.loads(out.read_text())
        assert report["quick"] is True
        # Quick runs shrink the simulated horizons, so wall-clock ratios
        # against the full-scale frozen baseline would be inflated ~8x;
        # they must be suppressed, not reported.
        for key in (
            "wide_sweep_wall_clock",
            "wide_sweep_to_decision",
            "task_throughput",
        ):
            assert report["speedup"][key] is None
        assert "scale differs" in report["speedup"]["note"]
        # Byte accounting is horizon-independent and stays reported.
        assert report["speedup"]["task_pickle_bytes"] > 0
        assert report["current"]["wide_sweep"]["wall_seconds"] > 0

    def test_quick_baseline_capture_rejected(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "perf_report.py"),
             "--suite", "sweep", "--quick",
             "--capture-baseline", str(tmp_path / "b.json")],
            capture_output=True,
            timeout=60,
        )
        assert proc.returncode != 0
        assert b"full scale" in proc.stderr
