"""Smoke tests for the perf microbench suite.

Tiny workloads only — these exist so the benches and the report tool keep
importing and producing sane measurements, not to measure anything.  CI
runs the real (still short) suite via ``tools/perf_report.py --quick``.
"""

import json
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.perf import microbench  # noqa: E402


class TestMicrobenches:
    def test_raw_events(self):
        result = microbench.bench_raw_events(total_events=2000, chains=8)
        assert result["events"] >= 2000
        assert result["events_per_sec"] > 0

    def test_timer_churn(self):
        result = microbench.bench_timer_churn(ops=2000)
        assert result["ops"] == 2000
        assert result["churn_per_sec"] > 0

    def test_scheduler_packets(self):
        out = microbench.bench_scheduler_packets(duration=1.0)
        assert set(out) == {"FIFO", "FIFO+", "WFQ", "CSZ"}
        for row in out.values():
            assert row["packets"] > 0
            assert row["packets_per_sec"] > 0

    def test_table_benches(self):
        assert microbench.bench_table1(duration=1.0)["wall_seconds"] > 0
        assert microbench.bench_table3(duration=1.0)["wall_seconds"] > 0


class TestPerfReport:
    def test_baseline_file_is_wellformed(self):
        with open(REPO_ROOT / "benchmarks" / "perf" / "baseline_pre_fastpath.json") as handle:
            baseline = json.load(handle)
        measurements = baseline["measurements"]
        assert measurements["raw_events"]["events_per_sec"] > 0
        assert measurements["timer_churn"]["churn_per_sec"] > 0
        assert measurements["table1"]["wall_seconds"] > 0

    def test_report_tool_end_to_end(self, tmp_path):
        """The CI entry point produces a parseable report with speedups."""
        out = tmp_path / "BENCH_core.json"
        subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "perf_report.py"),
             "--quick", "--out", str(out)],
            check=True,
            timeout=600,
        )
        report = json.loads(out.read_text())
        assert report["quick"] is True
        assert "raw_events_per_sec" in report["speedup"]
        assert report["current"]["raw_events"]["events_per_sec"] > 0
