"""Tests for the fluent builder (the Appendix encoded as helpers)."""

import pytest

from repro.scenario import DisciplineSpec, ScenarioBuilder, paper


class TestBuilderBasics:
    def test_requires_topology(self):
        with pytest.raises(ValueError, match="topology"):
            ScenarioBuilder().disciplines(DisciplineSpec.fifo()).build()

    def test_requires_discipline(self):
        with pytest.raises(ValueError, match="discipline"):
            ScenarioBuilder().single_link().build()

    def test_fluent_chain_returns_spec(self):
        spec = (
            ScenarioBuilder("x")
            .single_link()
            .paper_flows(3)
            .discipline(DisciplineSpec.fifo())
            .duration(5.0)
            .seed(9)
            .warmup(1.0)
            .build()
        )
        assert spec.name == "x"
        assert spec.duration == 5.0
        assert spec.seed == 9
        assert spec.warmup == 1.0


class TestPaperHelpers:
    def test_paper_flows_names_and_defaults(self):
        spec = (
            ScenarioBuilder()
            .single_link()
            .paper_flows(10)
            .discipline(DisciplineSpec.fifo())
            .build()
        )
        assert [f.name for f in spec.flows] == [f"flow-{i}" for i in range(10)]
        for flow in spec.flows:
            assert flow.source_host == "src-host"
            assert flow.dest_host == "dst-host"
            assert flow.average_rate_pps == paper.AVERAGE_RATE_PPS
            assert flow.bucket_packets == paper.BUCKET_PACKETS

    def test_paper_chain_is_figure1(self):
        spec = (
            ScenarioBuilder()
            .paper_chain()
            .discipline(DisciplineSpec.fifo())
            .build()
        )
        assert spec.topology.kind == "figure1"
        assert spec.topology.rate_bps == paper.LINK_RATE_BPS

    def test_figure1_flows_census(self):
        """The 22-flow placement: 10 per link, 12/4/4/2 by path length."""
        spec = (
            ScenarioBuilder()
            .paper_chain()
            .figure1_flows()
            .discipline(DisciplineSpec.fifo())
            .build()
        )
        assert len(spec.flows) == 22
        by_hops = {}
        per_link = {link: 0 for link in range(1, 5)}
        for flow in spec.flows:
            by_hops[flow.hops] = by_hops.get(flow.hops, 0) + 1
            src = int(flow.source_host.split("-")[1])
            dst = int(flow.dest_host.split("-")[1])
            assert flow.hops == dst - src
            for link in range(src, dst):
                per_link[link] += 1
        assert by_hops == {1: 12, 2: 4, 3: 4, 4: 2}
        assert set(per_link.values()) == {10}

    def test_figure1_flows_kwargs_apply_to_all(self):
        from repro.net.packet import ServiceClass

        spec = (
            ScenarioBuilder()
            .paper_chain()
            .figure1_flows(service_class=ServiceClass.PREDICTED)
            .discipline(DisciplineSpec.fifo())
            .build()
        )
        assert all(
            f.service_class is ServiceClass.PREDICTED for f in spec.flows
        )

    def test_percentiles_and_accounting(self):
        spec = (
            ScenarioBuilder()
            .single_link()
            .paper_flows(1)
            .discipline(DisciplineSpec.fifo())
            .percentiles(5.0, 95.0)
            .link_accounting()
            .build()
        )
        assert spec.percentile_points == (5.0, 95.0)
        assert spec.link_accounting

    def test_tcp_and_admission(self):
        spec = (
            ScenarioBuilder()
            .paper_chain(duplex=True)
            .paper_flows(1, source_host="Host-1", dest_host="Host-5")
            .discipline(DisciplineSpec.unified())
            .admission(realtime_quota=0.8, class_bounds_seconds=(0.1, 1.0))
            .tcp("t", "Host-1", "Host-3", max_cwnd=32.0)
            .build()
        )
        assert spec.admission.realtime_quota == 0.8
        assert spec.tcps[0].max_cwnd == 32.0
