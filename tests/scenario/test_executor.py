"""Tests for the persistent sweep execution engine.

Covers the executor's contracts: the flattened (override × seed ×
discipline) task graph and its expansion order, delta-task reconstruction
matching full-spec construction, serial vs pooled bit-identity, explicit
budget-expired / stopped statuses, streaming ``on_result`` order, warm
pool reuse, and custom task functions for orchestrated scenarios.
"""

import os

import pytest

from repro.scenario import (
    DisciplineSpec,
    ScenarioBuilder,
    SweepExecutor,
    stop_when_ci_below,
    sweep,
)
from repro.scenario.executor import (
    BUDGET_EXPIRED,
    COMPLETED,
    STOPPED,
    expand_deltas,
    resolve_run_spec,
    resolve_task_spec,
    run_task,
)
from repro.scenario.sweep import expand


def base_spec(duration=5.0, disciplines=None):
    builder = (
        ScenarioBuilder("executor-base")
        .single_link()
        .paper_flows(3)
        .duration(duration)
        .seed(1)
    )
    builder.disciplines(
        *(
            disciplines
            or (
                DisciplineSpec.fifo(),
                DisciplineSpec.fifoplus(),
                DisciplineSpec.wfq(equal_share_flows=3),
            )
        )
    )
    return builder.build()


class TestFlattenedGraph:
    def test_expansion_order_is_override_major_seed_minor(self):
        spec = base_spec()
        deltas = expand_deltas(
            spec, over=[{"duration": 4.0}, {"duration": 6.0}], seeds=[1, 2]
        )
        assert [
            (override["duration"], seed) for override, seed in deltas
        ] == [(4.0, 1), (4.0, 2), (6.0, 1), (6.0, 2)]

    def test_deltas_match_expand(self):
        """expand() is exactly the reconstruction of the delta list."""
        spec = base_spec()
        over = [{"duration": 4.0}, spec.replace(name="arm-b", seed=7), {}]
        for seeds in (None, [3, 5]):
            specs = expand(spec, over=over, seeds=seeds)
            deltas = expand_deltas(spec, over=over, seeds=seeds)
            assert specs == [
                resolve_run_spec(spec, override, seed)
                for override, seed in deltas
            ]

    def test_whole_spec_override_keeps_its_own_seed(self):
        spec = base_spec()
        arm = spec.replace(name="arm-b", seed=9)
        deltas = expand_deltas(spec, over=[{}, arm])
        assert [seed for _, seed in deltas] == [1, 9]

    def test_tasks_cover_every_run_discipline_pair(self):
        spec = base_spec()
        seen = []
        with SweepExecutor() as executor:
            outcome = executor.run_sweep(spec, seeds=[1, 2])
        for run in outcome.runs:
            for task in run.tasks:
                seen.append((task.run_index, task.discipline_index))
        assert seen == [
            (r, d) for r in range(2) for d in range(3)
        ]
        assert all(
            run.result.disciplines == ("FIFO", "FIFO+", "WFQ")
            for run in outcome.runs
        )

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            expand_deltas(base_spec(), over=[])
        with pytest.raises(ValueError):
            expand_deltas(base_spec(), seeds=[])


class TestDeltaReconstruction:
    def test_mapping_override_equals_full_spec_construction(self):
        spec = base_spec()
        override = {"duration": 7.0, "warmup": 1.0}
        run_spec = spec.replace(**override).replace(seed=5)
        for index in range(3):
            assert resolve_task_spec(spec, override, 5, index) == (
                run_spec.replace(disciplines=(run_spec.disciplines[index],))
            )

    def test_whole_spec_override_equals_full_spec_construction(self):
        spec = base_spec()
        arm = spec.replace(name="arm-b", duration=9.0)
        run_spec = arm.replace(seed=3)
        assert resolve_task_spec(spec, arm, 3, 1) == run_spec.replace(
            disciplines=(run_spec.disciplines[1],)
        )

    def test_reconstructed_task_runs_identically(self):
        """A worker-style delta rebuild simulates exactly like the spec
        the serial path materializes."""
        from repro.scenario.runner import ScenarioRunner

        spec = base_spec()
        task_spec = resolve_task_spec(spec, {"duration": 4.0}, 2, 0)
        direct = ScenarioRunner(
            spec.replace(duration=4.0, seed=2)
        ).run_discipline("FIFO")
        via_delta = run_task(task_spec).result
        assert via_delta.comparable_dict() == direct.comparable_dict()


class TestSerialPooledIdentity:
    @pytest.fixture(scope="class")
    def serial_pooled_streamed(self):
        spec = base_spec(duration=8.0)
        seeds = [1, 2, 3, 4]
        serial = sweep(spec, seeds=seeds)
        with SweepExecutor(workers=3) as executor:
            pooled = executor.run_sweep(spec, seeds=seeds)
            streamed = []
            executor.run_sweep(
                spec, seeds=seeds, on_result=lambda run: streamed.append(run)
            )
        return serial, pooled, streamed

    def test_pooled_bit_identical_to_serial(self, serial_pooled_streamed):
        serial, pooled, _ = serial_pooled_streamed
        assert [r.comparable_dict() for r in serial] == [
            r.comparable_dict() for r in pooled.results
        ]

    def test_streamed_bit_identical_after_reassembly(
        self, serial_pooled_streamed
    ):
        serial, _, streamed = serial_pooled_streamed
        by_index = sorted(streamed, key=lambda run: run.index)
        assert [r.comparable_dict() for r in serial] == [
            run.result.comparable_dict() for run in by_index
        ]

    def test_pooled_ran_in_workers(self, serial_pooled_streamed):
        _, pooled, _ = serial_pooled_streamed
        pids = {
            run_result.worker_pid
            for sweep_run in pooled.runs
            for run_result in sweep_run.result.runs
        }
        assert os.getpid() not in pids


class TestBudgets:
    def test_zero_budget_expires_every_run(self):
        outcome = sweep(base_spec(), seeds=[1, 2], budget_seconds=0.0)
        assert outcome.counts == {
            COMPLETED: 0,
            BUDGET_EXPIRED: 2,
            STOPPED: 0,
        }
        for run in outcome.runs:
            assert run.result is None
            assert run.tasks  # the attempt is recorded...
            assert all(t.status == BUDGET_EXPIRED for t in run.tasks)
            # ...including how far the simulation clock got.
            assert all(0 < t.sim_seconds < run.spec.duration for t in run.tasks)
        assert outcome.results == []

    def test_generous_budget_completes_bit_identically(self):
        """Budgeted (sliced) execution of a run that fits its budget is
        bit-identical to unbudgeted execution — slicing fires the same
        event sequence."""
        spec = base_spec()
        unbudgeted = sweep(spec, seeds=[1, 2])
        budgeted = sweep(spec, seeds=[1, 2], budget_seconds=1e9)
        assert budgeted.counts[COMPLETED] == 2
        assert [r.comparable_dict() for r in unbudgeted] == [
            r.comparable_dict() for r in budgeted.results
        ]

    def test_pooled_budget_expiry_reported(self):
        with SweepExecutor(workers=2, budget_seconds=0.0) as executor:
            outcome = executor.run_sweep(base_spec(), seeds=[1, 2])
        assert outcome.counts[BUDGET_EXPIRED] == 2
        assert executor.stats["tasks_budget_expired"] == 6


class TestEarlyStopping:
    def test_serial_stop_after_two_runs(self):
        outcome = sweep(
            base_spec(),
            seeds=[1, 2, 3, 4, 5],
            early_stop=lambda completed: len(completed) >= 2,
        )
        assert [run.status for run in outcome.runs] == [
            COMPLETED, COMPLETED, STOPPED, STOPPED, STOPPED,
        ]
        # Stopped runs are explicit entries, not silently missing.
        assert len(outcome.runs) == 5
        assert all(run.result is None for run in outcome.with_status(STOPPED))
        assert len(outcome.results) == 2

    def test_pooled_stop_leaves_tail_undispatched(self):
        with SweepExecutor(workers=2) as executor:
            outcome = executor.run_sweep(
                base_spec(),
                seeds=list(range(1, 13)),
                early_stop=lambda completed: len(completed) >= 2,
            )
            skipped = executor.stats["tasks_skipped"]
        assert outcome.counts[COMPLETED] >= 2
        assert outcome.counts[STOPPED] >= 1
        assert skipped > 0
        # Whatever completed is still bit-identical to a serial run of
        # the same seeds.
        for run in outcome.with_status(COMPLETED):
            serial = sweep(base_spec(), seeds=[run.spec.seed])[0]
            assert run.result.comparable_dict() == serial.comparable_dict()

    def test_stop_when_ci_below_closes_on_stable_metric(self):
        predicate = stop_when_ci_below(
            lambda result: 10.0, rel_half_width=0.05, min_runs=3
        )
        outcome = sweep(
            base_spec(), seeds=list(range(1, 9)), early_stop=predicate
        )
        # A zero-variance metric closes at exactly min_runs.
        assert outcome.counts[COMPLETED] == 3
        assert outcome.counts[STOPPED] == 5

    def test_stop_when_ci_below_zero_mean_zero_variance_closes(self):
        """An all-zero estimand is a width-0 interval: stop, don't run
        the whole ladder."""
        predicate = stop_when_ci_below(
            lambda result: 0.0, rel_half_width=0.05, min_runs=3
        )
        outcome = sweep(
            base_spec(), seeds=list(range(1, 9)), early_stop=predicate
        )
        assert outcome.counts[COMPLETED] == 3

    def test_stop_when_ci_below_needs_min_runs(self):
        calls = []

        def metric(result):
            calls.append(result.seed)
            return float(result.seed)  # high relative variance

        predicate = stop_when_ci_below(metric, rel_half_width=1e-9, min_runs=2)
        outcome = sweep(
            base_spec(), seeds=list(range(1, 5)), early_stop=predicate
        )
        assert outcome.counts[COMPLETED] == 4  # never closed
        with pytest.raises(ValueError):
            stop_when_ci_below(lambda r: 0.0, min_runs=1)


class TestStreaming:
    def test_serial_on_result_order_is_expansion_order(self):
        order = []
        sweep(
            base_spec(),
            over=[{"duration": 4.0}, {"duration": 6.0}],
            seeds=[1, 2],
            on_result=lambda run: order.append(run.index),
            budget_seconds=1e9,  # exercise the outcome-returning path too
        )
        assert order == [0, 1, 2, 3]

    def test_pooled_on_result_covers_every_run_once(self):
        streamed = []
        with SweepExecutor(workers=3) as executor:
            outcome = executor.run_sweep(
                base_spec(),
                seeds=[1, 2, 3, 4],
                on_result=lambda run: streamed.append(run.index),
            )
        assert sorted(streamed) == [0, 1, 2, 3]
        assert outcome.counts[COMPLETED] == 4

    def test_on_result_sees_budget_expired_runs(self):
        statuses = []
        sweep(
            base_spec(),
            seeds=[1, 2],
            budget_seconds=0.0,
            on_result=lambda run: statuses.append(run.status),
        )
        assert statuses == [BUDGET_EXPIRED, BUDGET_EXPIRED]


class TestPersistentPool:
    def test_pool_reused_across_sweeps_of_same_base(self):
        spec = base_spec()
        with SweepExecutor(workers=2) as executor:
            executor.run_sweep(spec, seeds=[1, 2])
            first_pool = executor._pool
            executor.run_sweep(spec, seeds=[3, 4])
            assert executor._pool is first_pool
            assert executor.stats["pools_created"] == 1

    def test_pool_recycled_on_base_change(self):
        with SweepExecutor(workers=2) as executor:
            executor.run_sweep(base_spec(), seeds=[1, 2])
            executor.run_sweep(base_spec(duration=6.0), seeds=[1, 2])
            assert executor.stats["pools_created"] == 2

    def test_tasks_ship_as_compact_deltas(self):
        """Per-task payloads must be far smaller than the base spec the
        initializer ships once."""
        with SweepExecutor(workers=2, track_task_bytes=True) as executor:
            executor.run_sweep(base_spec(), seeds=list(range(1, 5)))
            stats = executor.stats
        per_task = stats["task_bytes"] / stats["tasks_dispatched"]
        per_worker_base = stats["base_bytes"] / 2
        assert per_task < per_worker_base / 5

    def test_pool_sized_to_task_count_and_grows(self):
        spec = base_spec()
        with SweepExecutor(workers=8) as executor:
            executor.run_sweep(spec, seeds=[1])  # 3 tasks
            assert executor._pool_size == 3
            executor.run_sweep(spec, seeds=[1, 2, 3])  # 9 tasks: regrow
            assert executor._pool_size == 8
            assert executor.stats["pools_created"] == 2
            executor.run_sweep(spec, seeds=[4])  # smaller again: keep pool
            assert executor.stats["pools_created"] == 2

    def test_task_bytes_not_measured_by_default(self):
        with SweepExecutor(workers=2) as executor:
            executor.run_sweep(base_spec(), seeds=[1, 2])
            assert executor.stats["task_bytes"] == 0

    def test_serial_executor_needs_no_pool(self):
        with SweepExecutor() as executor:
            outcome = executor.run_sweep(base_spec(), seeds=[1])
            assert executor._pool is None
        assert outcome.counts[COMPLETED] == 1


class TestWholeSpecOverrideCache:
    """Whole-spec overrides ship once per worker (keyed by fingerprint),
    not once per task payload."""

    def arms(self):
        spec = base_spec(disciplines=(DisciplineSpec.fifo(),))
        return spec, [
            spec.replace(name="arm-a", duration=4.0),
            spec.replace(name="arm-b", duration=6.0),
        ]

    def test_payloads_carry_references_not_specs(self):
        spec, arms = self.arms()
        with SweepExecutor(workers=2, track_task_bytes=True) as executor:
            executor.run_sweep(spec, over=arms)
            stats = dict(executor.stats)
        # Two distinct whole specs x two workers shipped at pool start...
        assert stats["override_specs_shipped"] == 4
        assert stats["override_bytes"] > 0
        # ...so per-task payloads stay tiny despite whole-spec arms.
        per_task = stats["task_bytes"] / stats["tasks_dispatched"]
        assert per_task < stats["override_bytes"] / 4 / 5

    def test_duplicate_arms_ship_once(self):
        spec, arms = self.arms()
        with SweepExecutor(workers=2) as executor:
            executor.run_sweep(spec, over=[arms[0], arms[0], arms[0]])
            assert executor.stats["override_specs_shipped"] == 2  # x workers

    def test_pool_reused_when_override_set_shrinks(self):
        spec, arms = self.arms()
        with SweepExecutor(workers=2) as executor:
            executor.run_sweep(spec, over=arms)
            assert executor.stats["pools_created"] == 1
            # A subset of the already-shipped specs: same pool.
            executor.run_sweep(spec, over=[arms[0], arms[0]])
            assert executor.stats["pools_created"] == 1
            # A new whole spec forces a recycle.
            executor.run_sweep(
                spec,
                over=[
                    spec.replace(name="arm-c", duration=8.0),
                    spec.replace(name="arm-d", duration=9.0),
                ],
            )
            assert executor.stats["pools_created"] == 2

    def test_pooled_matches_serial_for_spec_arms(self):
        def strip_walls(payload):
            """Drop the runtime block (wall clock, worker pid): the
            simulation payload itself must be bit-identical."""
            if isinstance(payload, dict):
                return {
                    key: strip_walls(value)
                    for key, value in payload.items()
                    if key != "runtime" and "wall" not in key
                }
            if isinstance(payload, list):
                return [strip_walls(item) for item in payload]
            return payload

        spec, arms = self.arms()
        with SweepExecutor(workers=2) as executor:
            pooled = executor.run_sweep(spec, over=arms)
        with SweepExecutor() as executor:
            serial = executor.run_sweep(spec, over=arms)
        assert [strip_walls(r.result.to_dict()) for r in pooled.runs] == [
            strip_walls(r.result.to_dict()) for r in serial.runs
        ]


def _double_duration_payload(spec):
    """Module-level custom task (must pickle into workers)."""
    return {"name": spec.name, "seed": spec.seed, "duration": spec.duration}


class TestCustomTaskFn:
    def test_task_fn_gets_whole_run_spec(self):
        spec = base_spec()
        with SweepExecutor() as executor:
            outcome = executor.run_sweep(
                spec, seeds=[4, 5], task_fn=_double_duration_payload
            )
        assert [run.status for run in outcome.runs] == [COMPLETED, COMPLETED]
        assert [run.result for run in outcome.runs] == [None, None]
        assert [run.payloads[0]["seed"] for run in outcome.runs] == [4, 5]
        # One task per run: the function owns all disciplines.
        assert [len(run.tasks) for run in outcome.runs] == [1, 1]

    def test_task_fn_ladder_closes_on_payload_metric(self):
        """stop_when_ci_below reads the task payload when SweepRun.result
        is None (custom-task sweeps), so replication ladders close."""
        predicate = stop_when_ci_below(
            lambda payload: float(payload["duration"]),
            rel_half_width=0.5,
            min_runs=2,
        )
        with SweepExecutor() as executor:
            outcome = executor.run_sweep(
                base_spec(),
                seeds=list(range(1, 6)),
                task_fn=_double_duration_payload,
                early_stop=predicate,
            )
        assert outcome.counts[COMPLETED] == 2
        assert outcome.counts[STOPPED] == 3

    def test_task_fn_rejects_budget(self):
        """Budgets only bind the default task; silently dropping one
        would be a broken promise, so the combination is an error."""
        with SweepExecutor(budget_seconds=1.0) as executor:
            with pytest.raises(ValueError, match="task_fn"):
                executor.run_sweep(
                    base_spec(), seeds=[1], task_fn=_double_duration_payload
                )
            # Explicit budget is rejected the same way.
            with pytest.raises(ValueError, match="task_fn"):
                executor.run_sweep(
                    base_spec(),
                    seeds=[1],
                    task_fn=_double_duration_payload,
                    budget_seconds=5.0,
                )
            # Explicitly disabling the executor default is fine.
            outcome = executor.run_sweep(
                base_spec(),
                seeds=[1],
                task_fn=_double_duration_payload,
                budget_seconds=None,
            )
            assert outcome.counts[COMPLETED] == 1

    def test_task_fn_pooled(self):
        with SweepExecutor(workers=2) as executor:
            outcome = executor.run_sweep(
                base_spec(), seeds=[1, 2, 3], task_fn=_double_duration_payload
            )
        assert sorted(
            run.payloads[0]["seed"] for run in outcome.runs
        ) == [1, 2, 3]


class TestSweepFunction:
    def test_plain_sweep_returns_result_list(self):
        results = sweep(base_spec(), seeds=[1, 2])
        assert [r.seed for r in results] == [1, 2]

    def test_budgeted_sweep_returns_outcome(self):
        outcome = sweep(base_spec(), seeds=[1], budget_seconds=1e9)
        assert outcome.counts[COMPLETED] == 1
        assert outcome.to_dict()["counts"][COMPLETED] == 1

    def test_executor_default_budget_is_honoured(self):
        """A budget carried by a caller-owned executor must survive
        sweep(): runs over it are reported, not silently run unbounded."""
        from repro.scenario.executor import BUDGET_EXPIRED

        with SweepExecutor(budget_seconds=0.0) as executor:
            outcome = sweep(base_spec(), seeds=[1, 2], executor=executor)
        assert outcome.counts[BUDGET_EXPIRED] == 2  # outcome, not a list

    def test_explicit_budget_overrides_executor_default(self):
        with SweepExecutor(budget_seconds=0.0) as executor:
            outcome = sweep(
                base_spec(), seeds=[1], budget_seconds=1e9, executor=executor
            )
        assert outcome.counts[COMPLETED] == 1

    def test_caller_owned_executor_is_reused_and_left_open(self):
        spec = base_spec()
        with SweepExecutor(workers=2) as executor:
            sweep(spec, seeds=[1, 2], executor=executor)
            sweep(spec, seeds=[3, 4], executor=executor)
            assert executor.stats["sweeps"] == 2
            assert executor.stats["pools_created"] == 1
            assert executor._pool is not None
