"""Generator unit tests: topology families, flow sizing, failure modes."""

import pytest

from repro.net.packet import ServiceClass
from repro.net.routing import RoutingError
from repro.scenario import (
    DisciplineSpec,
    GuaranteedRequest,
    ScenarioRunner,
    registry,
)
from repro.scenario.generators import (
    GEN_PREFIX,
    GUARANTEED_QUOTA,
    MAX_FLOWS,
    access_core,
    access_core_topology,
    generate_flows,
    generator_names,
    links_on_route,
    random_graph,
    random_graph_topology,
    scale_free,
    topology_routes,
    wan_guaranteed,
    wan_path,
    wan_path_topology,
    wfq_auto_rate,
)

# A seed whose unrepaired sparse sample is disconnected (pinned below).
DISCONNECTED_SEED = 1
SPARSE = dict(num_switches=6, edge_prob=0.08)


class TestRandomGraphTopology:
    def test_repaired_graph_is_strongly_connected(self):
        for gen_seed in (1, 5, 11):
            topology = random_graph_topology(gen_seed, num_switches=7)
            routing = topology_routes(topology)
            for src in topology.host_names:
                for dst in topology.host_names:
                    if src != dst:
                        assert routing.path(src, dst)  # no RoutingError

    def test_one_host_per_switch(self):
        topology = random_graph_topology(4, num_switches=9)
        assert len(topology.host_attachments) == 9
        assert len(set(att.switch for att in topology.host_attachments)) == 9

    def test_scale_free_is_connected_and_hubby(self):
        topology = random_graph_topology(
            3, num_switches=12, scale_free=True
        )
        routing = topology_routes(topology)
        for dst in topology.host_names[1:]:
            assert routing.path(topology.host_names[0], dst)
        # Preferential attachment concentrates degree on early nodes.
        out_degree = {}
        for link in topology.links:
            out_degree[link.src] = out_degree.get(link.src, 0) + 1
        assert max(out_degree.values()) >= 4

    def test_propagation_sampled_within_range(self):
        topology = random_graph_topology(
            2, num_switches=6, propagation_range=(0.004, 0.02)
        )
        for link in topology.links:
            assert 0.004 <= link.propagation_delay <= 0.02

    def test_crafted_seed_unrepaired_sample_is_disconnected(self):
        """Regression pin: the sparse sample really is disconnected, the
        generator raises a RoutingError *naming the flow* instead of
        hanging or emitting an unroutable spec."""
        with pytest.raises(RoutingError, match=r"generated flow gen-0"):
            random_graph(
                gen_seed=DISCONNECTED_SEED,
                repair=False,
                duration=5.0,
                **SPARSE,
            )

    def test_same_seed_repaired_builds_and_runs(self):
        spec = random_graph(
            gen_seed=DISCONNECTED_SEED,
            repair=True,
            duration=2.0,
            warmup=0.5,
            **SPARSE,
        )
        result = ScenarioRunner(spec).run()
        assert all(run.invariants_clean for run in result.runs)

    def test_unroutable_flow_on_handbuilt_spec_raises_at_build(self):
        """The spec layer backstop: a disconnected topology that slips
        past generation still fails fast at build, naming the flow."""
        topology = random_graph_topology(
            DISCONNECTED_SEED, repair=False, **SPARSE
        )
        spec = random_graph(
            gen_seed=DISCONNECTED_SEED, duration=5.0, **SPARSE
        ).replace(topology=topology)
        with pytest.raises(RoutingError, match=r"flow 'gen-"):
            ScenarioRunner(spec).build()


class TestWanAndAccessTopologies:
    def test_wan_path_propagation_dominates(self):
        topology = wan_path_topology(1, hops=5)
        assert len(topology.links) == 5
        tx_time = 1000 / topology.links[0].rate_bps
        for link in topology.links:
            assert link.propagation_delay >= 5 * tx_time

    def test_access_core_rates_asymmetric(self):
        topology = access_core_topology(1, num_leaves=5)
        leaf_rates = [
            link.rate_bps for link in topology.links if link.dst == "CORE"
        ]
        core = [link for link in topology.links if link.src == "CORE"]
        assert len(leaf_rates) == 5 and len(core) == 1
        assert all(rate < core[0].rate_bps for rate in leaf_rates)
        assert sum(leaf_rates) > core[0].rate_bps  # genuine fan-in


class TestFlowPopulation:
    def test_population_reaches_target_utilization(self):
        topology = random_graph_topology(5, num_switches=8)
        flows = generate_flows(topology, 5, target_utilization=0.85)
        routing = topology_routes(topology)
        offered = {link.name: 0.0 for link in topology.links}
        rates = {link.name: link.rate_bps for link in topology.links}
        for flow in flows:
            for name in links_on_route(
                topology, routing, flow.source_host, flow.dest_host
            ):
                offered[name] += flow.average_rate_pps * flow.packet_size_bits
        bottleneck = max(offered[n] / rates[n] for n in offered)
        assert bottleneck >= 0.85
        # Sizing stops as soon as the target is crossed, so the final
        # flow overshoots by at most its own rate on one link.
        assert bottleneck <= 0.85 + 86_000 / min(rates.values())

    def test_population_mixes_service_classes(self):
        flows = random_graph(gen_seed=1, duration=5.0).flows
        classes = {flow.service_class for flow in flows}
        assert ServiceClass.PREDICTED in classes
        assert ServiceClass.DATAGRAM in classes
        priorities = {
            flow.priority_class
            for flow in flows
            if flow.service_class is ServiceClass.PREDICTED
        }
        assert priorities == {0, 1}

    def test_multihop_flows_seeded_first(self):
        spec = random_graph(gen_seed=2, duration=5.0)
        assert (spec.flows[0].hops or 0) >= 2
        assert sum(1 for f in spec.flows if (f.hops or 0) >= 2) >= 2

    def test_population_capped_when_target_unreachable(self):
        topology = wan_path_topology(1, hops=2)
        hosts = topology.host_names
        pairs = [
            (hosts[i], hosts[j])
            for i in range(len(hosts))
            for j in range(i + 1, len(hosts))
        ]
        flows = generate_flows(
            topology, 1, target_utilization=50.0, max_flows=40, pairs=pairs
        )
        assert len(flows) == 40

    def test_hops_metadata_matches_routes(self):
        spec = wan_path(gen_seed=1, duration=5.0)
        routing = topology_routes(spec.topology)
        for flow in spec.flows:
            route = links_on_route(
                spec.topology, routing, flow.source_host, flow.dest_host
            )
            assert flow.hops == len(route)

    def test_pre_build_routes_equal_simulator_routes(self):
        """The generators' load sizing uses topology_routes /
        links_on_route; pin that they reproduce the built Network's
        routing exactly, so per-link offered-load and guaranteed-quota
        math can never diverge from the paths the simulator uses."""
        from repro.scenario import ScenarioRunner

        spec = random_graph(gen_seed=6, duration=2.0)
        context = ScenarioRunner(spec).build()
        routing = topology_routes(spec.topology)
        hosts = spec.topology.host_names
        for src in hosts:
            for dst in hosts:
                if src == dst:
                    continue
                assert links_on_route(
                    spec.topology, routing, src, dst
                ) == tuple(context.net.link_names_on_path(src, dst))


class TestGuaranteedPlacement:
    def test_guaranteed_commitments_respect_quota(self):
        spec = wan_guaranteed(gen_seed=1, duration=5.0)
        routing = topology_routes(spec.topology)
        committed = {link.name: 0.0 for link in spec.topology.links}
        rates = {link.name: link.rate_bps for link in spec.topology.links}
        for flow in spec.flows:
            if isinstance(flow.request, GuaranteedRequest):
                for name in links_on_route(
                    spec.topology, routing, flow.source_host, flow.dest_host
                ):
                    committed[name] += flow.request.clock_rate_bps
        for name in committed:
            assert committed[name] <= GUARANTEED_QUOTA * rates[name] + 1e-9

    def test_wfq_auto_rate_keeps_total_clock_under_capacity(self):
        spec = wan_guaranteed(gen_seed=1, duration=5.0)
        auto = dict(spec.disciplines[1].params)["auto_register_rate_bps"]
        routing = topology_routes(spec.topology)
        for link in spec.topology.links:
            total = 0.0
            for flow in spec.flows:
                route = links_on_route(
                    spec.topology, routing, flow.source_host, flow.dest_host
                )
                if link.name not in route:
                    continue
                if isinstance(flow.request, GuaranteedRequest):
                    total += flow.request.clock_rate_bps
                else:
                    total += auto
            assert total <= link.rate_bps + 1e-6


class TestRegistryAndSpecs:
    def test_gen_names_registered(self):
        names = generator_names()
        assert set(names) >= {
            "gen:random-graph",
            "gen:scale-free",
            "gen:wan-path",
            "gen:access-core",
            "gen:wan-guaranteed",
        }
        assert all(name.startswith(GEN_PREFIX) for name in names)

    def test_registry_build_forwards_gen_seed(self):
        spec = registry.build(
            "gen:random-graph", gen_seed=6, duration=12.0, seed=3
        )
        assert spec == random_graph(gen_seed=6, duration=12.0, seed=3)
        assert spec.seed == 3 and spec.duration == 12.0

    def test_generated_specs_validate_by_default(self):
        for name in generator_names():
            assert registry.build(name, duration=5.0).validate is True

    def test_scale_free_alias_matches_flag(self):
        assert scale_free(gen_seed=4, duration=5.0) == random_graph(
            gen_seed=4, scale_free=True, duration=5.0
        )

    def test_default_disciplines_are_the_flagship_trio(self):
        spec = access_core(gen_seed=1, duration=5.0)
        assert [d.name for d in spec.disciplines] == ["FIFO", "FIFO+", "CSZ"]

    def test_custom_disciplines_accepted(self):
        spec = random_graph(
            gen_seed=1,
            duration=5.0,
            disciplines=(DisciplineSpec.wfq(equal_share_flows=8),),
        )
        assert [d.name for d in spec.disciplines] == ["WFQ"]
