"""Tests for the scenario runner: paired arrivals, determinism, results."""

import pytest

from repro.net.packet import ServiceClass
from repro.scenario import (
    DisciplineSpec,
    FlowSpec,
    GuaranteedRequest,
    PredictedRequest,
    ScenarioBuilder,
    ScenarioRunner,
)

DURATION = 15.0


@pytest.fixture(scope="module")
def two_discipline_result():
    spec = (
        ScenarioBuilder("paired")
        .single_link()
        .paper_flows(10)  # the paper's 83.5 % load — queues actually build
        .disciplines(
            DisciplineSpec.wfq(equal_share_flows=10), DisciplineSpec.fifo()
        )
        .duration(DURATION)
        .seed(3)
        .build()
    )
    return ScenarioRunner(spec).run()


class TestPairedArrivals:
    def test_identical_arrival_process_across_disciplines(
        self, two_discipline_result
    ):
        """Same spec + seed: every discipline sees the identical per-flow
        source process (streams are keyed by flow name only)."""
        wfq, fifo = (
            two_discipline_result.run("WFQ"),
            two_discipline_result.run("FIFO"),
        )
        for flow in (f"flow-{i}" for i in range(10)):
            assert wfq.flow(flow).generated == fifo.flow(flow).generated
            assert wfq.flow(flow).emitted == fifo.flow(flow).emitted
            assert wfq.flow(flow).filtered == fifo.flow(flow).filtered

    def test_delays_differ_across_disciplines(self, two_discipline_result):
        """Same arrivals, different scheduling: the delay numbers move."""
        wfq, fifo = (
            two_discipline_result.run("WFQ"),
            two_discipline_result.run("FIFO"),
        )
        assert wfq.flow("flow-0").mean_seconds != fifo.flow("flow-0").mean_seconds


class TestDeterminism:
    def test_repeated_runs_bit_identical(self):
        spec = (
            ScenarioBuilder("det")
            .single_link()
            .paper_flows(3)
            .discipline(DisciplineSpec.fifo())
            .duration(10.0)
            .seed(5)
            .build()
        )
        a = ScenarioRunner(spec).run().comparable_dict()
        b = ScenarioRunner(spec).run().comparable_dict()
        assert a == b

    def test_seed_changes_results(self):
        def result_for(seed):
            spec = (
                ScenarioBuilder("det")
                .single_link()
                .paper_flows(3)
                .discipline(DisciplineSpec.fifo())
                .duration(10.0)
                .seed(seed)
                .build()
            )
            return ScenarioRunner(spec).run_discipline()

        assert (
            result_for(1).flow("flow-0").mean_seconds
            != result_for(2).flow("flow-0").mean_seconds
        )


class TestResultStructure:
    def test_link_stats_and_events(self, two_discipline_result):
        run = two_discipline_result.run("FIFO")
        assert 0.0 < run.utilization("A->B") < 1.0
        assert run.events_processed > 1000
        assert run.total_drops >= 0
        assert run.worker_pid > 0

    def test_flow_stats_units(self, two_discipline_result):
        stats = two_discipline_result.run("FIFO").flow("flow-0")
        assert stats.recorded > 0
        assert stats.mean_in(0.001) == stats.mean_seconds / 0.001
        assert stats.percentile_in(99.9) >= stats.percentile_in(50.0)
        with pytest.raises(KeyError):
            stats.percentile_in(42.0)

    def test_to_dict_json_serializable(self, two_discipline_result):
        import json

        payload = json.dumps(two_discipline_result.to_dict())
        assert "runs" in payload
        assert two_discipline_result.to_dict()["seed"] == 3

    def test_lookup_errors(self, two_discipline_result):
        with pytest.raises(KeyError):
            two_discipline_result.run("nope")
        with pytest.raises(KeyError):
            two_discipline_result.run("FIFO").flow("nope")


class TestServiceRequests:
    def test_guaranteed_without_admission_installs_clock_rates(self):
        spec = (
            ScenarioBuilder("g")
            .single_link()
            .paper_flows(2, request=GuaranteedRequest(clock_rate_bps=170_000))
            .discipline(DisciplineSpec.unified(num_predicted_classes=1))
            .duration(5.0)
            .build()
        )
        context = ScenarioRunner(spec).build()
        # Sources stamp the guaranteed class even without signaling.
        assert all(
            s.service_class is ServiceClass.GUARANTEED
            for s in context.sources.values()
        )

    def test_admission_grants_set_predicted_priority(self):
        spec = (
            ScenarioBuilder("p")
            .single_link()
            .add_flow(
                "v0",
                "src-host",
                "dst-host",
                request=PredictedRequest(
                    token_rate_bps=85_000,
                    bucket_depth_bits=50_000,
                    target_delay_seconds=1.5,
                ),
            )
            .discipline(DisciplineSpec.unified(num_predicted_classes=2))
            .admission(class_bounds_seconds=(0.15, 1.5))
            .duration(5.0)
            .build()
        )
        context = ScenarioRunner(spec).build()
        assert context.grants["v0"].priority_class == 1
        source = context.sources["v0"]
        assert source.service_class is ServiceClass.PREDICTED
        assert source.priority_class == 1

    def test_record_false_skips_sink(self):
        spec = (
            ScenarioBuilder("bg")
            .single_link()
            .paper_flows(2, record=False)
            .discipline(DisciplineSpec.fifo())
            .duration(5.0)
            .build()
        )
        run = ScenarioRunner(spec).run_discipline()
        assert run.flows == ()

    def test_partial_establish_order_still_establishes_everyone(self):
        """A partial establish_order prioritizes; unlisted request-bearing
        flows must still visit admission afterwards."""
        request = PredictedRequest(
            token_rate_bps=85_000,
            bucket_depth_bits=50_000,
            target_delay_seconds=1.5,
        )
        spec = (
            ScenarioBuilder("partial")
            .single_link()
            .add_flow("p0", "src-host", "dst-host", request=request)
            .add_flow("p1", "src-host", "dst-host", request=request)
            .discipline(DisciplineSpec.unified(num_predicted_classes=2))
            .admission(class_bounds_seconds=(0.15, 1.5))
            .establish_order("p1")
            .duration(5.0)
            .build()
        )
        context = ScenarioRunner(spec).build()
        assert set(context.grants) == {"p0", "p1"}
        # p1 was prioritized: it reached the signaling agent first.
        assert list(context.signaling.grants) == ["p1", "p0"]

    def test_remove_flow_frees_the_name(self):
        """Teardown releases the source, receiver, and grant so a later
        load wave can re-admit the same flow name."""
        request = PredictedRequest(
            token_rate_bps=85_000,
            bucket_depth_bits=50_000,
            target_delay_seconds=1.5,
        )
        spec = (
            ScenarioBuilder("waves")
            .single_link()
            .discipline(DisciplineSpec.unified(num_predicted_classes=2))
            .admission(class_bounds_seconds=(0.15, 1.5))
            .duration(5.0)
            .build()
        )
        context = ScenarioRunner(spec).build()
        wave = FlowSpec("w0", "src-host", "dst-host", request=request)
        context.add_flow(wave)
        context.remove_flow("w0")
        assert "w0" not in context.sources
        assert "w0" not in context.grants
        context.add_flow(wave)  # second wave reuses the name
        assert context.grants["w0"].priority_class == 1

    def test_duplicate_add_flow_rejected(self):
        spec = (
            ScenarioBuilder("dup")
            .single_link()
            .paper_flows(1)
            .discipline(DisciplineSpec.fifo())
            .duration(5.0)
            .build()
        )
        context = ScenarioRunner(spec).build()
        with pytest.raises(ValueError, match="already exists"):
            context.add_flow(FlowSpec("flow-0", "src-host", "dst-host"))


class TestPartialRuns:
    def test_tcp_goodput_uses_actual_elapsed_time(self):
        """run(until=half) must not divide delivered bits by the full
        spec duration."""
        spec = (
            ScenarioBuilder("partial-tcp")
            .chain(2, duplex=True)
            .discipline(DisciplineSpec.fifo())
            .tcp("t", "Host-1", "Host-2")
            .duration(40.0)
            .build()
        )
        context = ScenarioRunner(spec).build()
        context.run(until=20.0)
        partial = context.collect().tcp("t").goodput_bps
        context.run()  # on to the full duration
        full = context.collect().tcp("t").goodput_bps
        # Roughly steady TCP throughput: the half-time measurement should
        # be in the same ballpark as the full-run one, not half of it.
        assert partial > 0.75 * full


class TestParallelDisciplines:
    def test_workers_match_serial(self):
        spec = (
            ScenarioBuilder("par")
            .single_link()
            .paper_flows(3)
            .disciplines(
                DisciplineSpec.wfq(equal_share_flows=3), DisciplineSpec.fifo()
            )
            .duration(10.0)
            .seed(2)
            .build()
        )
        serial = ScenarioRunner(spec).run().comparable_dict()
        parallel = ScenarioRunner(spec).run(workers=2).comparable_dict()
        assert serial == parallel
