"""Tests for the declarative spec layer (validation, immutability, JSON)."""

import dataclasses

import pytest

from repro.net.packet import ServiceClass
from repro.scenario import (
    AdmissionSpec,
    DisciplineSpec,
    FlowSpec,
    GuaranteedRequest,
    OutageEvent,
    OutageSpec,
    PredictedRequest,
    ScenarioSpec,
    TopologySpec,
)


def minimal_spec(**overrides) -> ScenarioSpec:
    defaults = dict(
        name="t",
        topology=TopologySpec.single_link(),
        flows=(FlowSpec("f0", "src-host", "dst-host"),),
        disciplines=(DisciplineSpec.fifo(),),
        duration=10.0,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


class TestTopologySpec:
    def test_kinds_validated(self):
        with pytest.raises(ValueError, match="unknown topology kind"):
            TopologySpec(nodes=("A",), kind="torus")

    def test_chain_needs_length(self):
        with pytest.raises(ValueError, match="at least 2 switches"):
            TopologySpec.chain(1)

    def test_single_link_compiles_to_graph(self):
        spec = TopologySpec.single_link()
        assert spec.nodes == ("A", "B")
        assert spec.link_names == ("A->B",)
        assert spec.host_names == ("src-host", "dst-host")
        assert spec.kind == "single_link"

    def test_chain_duplex_compiles_both_directions(self):
        spec = TopologySpec.chain(3, duplex=True)
        assert spec.link_names == (
            "S-1->S-2", "S-2->S-1", "S-2->S-3", "S-3->S-2"
        )

    def test_paper_defaults(self):
        spec = TopologySpec.figure1()
        assert spec.rate_bps == 1_000_000
        assert spec.buffer_packets == 200
        assert spec.num_switches == 5

    def test_uniform_rate_raises_on_heterogeneous_links(self):
        spec = TopologySpec.graph(
            nodes=["A", "B", "C"],
            links=[
                {"src": "A", "dst": "B", "rate_bps": 1_000_000},
                {"src": "B", "dst": "C", "rate_bps": 64_000},
            ],
            host_attachments=[("h-a", "A"), ("h-c", "C")],
        )
        with pytest.raises(ValueError, match="heterogeneous"):
            spec.rate_bps

    def test_graph_validation(self):
        with pytest.raises(ValueError, match="unknown switch"):
            TopologySpec.graph(
                nodes=["A"],
                links=[{"src": "A", "dst": "ghost"}],
                host_attachments=[],
            )
        with pytest.raises(ValueError, match="duplicate link"):
            TopologySpec.graph(
                nodes=["A", "B"],
                links=[{"src": "A", "dst": "B"}, {"src": "A", "dst": "B"}],
                host_attachments=[],
            )
        with pytest.raises(ValueError, match="unknown switch"):
            TopologySpec.graph(
                nodes=["A"], links=[], host_attachments=[("h", "ghost")]
            )

    def test_frozen(self):
        spec = TopologySpec.single_link()
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.nodes = ("X",)


class TestFlowSpec:
    def test_paper_defaults(self):
        flow = FlowSpec("f", "a", "b")
        assert flow.average_rate_pps == 85.0
        assert flow.bucket_packets == 50.0
        assert flow.packet_size_bits == 1000
        assert flow.service_class is ServiceClass.DATAGRAM

    def test_validation(self):
        with pytest.raises(ValueError):
            FlowSpec("", "a", "b")
        with pytest.raises(ValueError):
            FlowSpec("f", "a", "b", average_rate_pps=0)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            GuaranteedRequest(clock_rate_bps=0)
        with pytest.raises(ValueError):
            PredictedRequest(
                token_rate_bps=1, bucket_depth_bits=1, target_delay_seconds=0
            )


class TestDisciplineSpec:
    def test_params_are_hashable_and_sorted(self):
        spec = DisciplineSpec.of("X", "wfq", b=2, a=1)
        assert spec.params == (("a", 1), ("b", 2))
        hash(spec)

    def test_param_dict(self):
        spec = DisciplineSpec.wfq(equal_share_flows=10)
        assert spec.param_dict["equal_share_flows"] == 10

    def test_custom_factory_not_serializable(self):
        spec = DisciplineSpec.custom("X", lambda sim, name, link: None)
        with pytest.raises(ValueError, match="custom factory"):
            spec.to_dict()


class TestScenarioSpec:
    def test_duplicate_flow_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            minimal_spec(
                flows=(
                    FlowSpec("f0", "src-host", "dst-host"),
                    FlowSpec("f0", "src-host", "dst-host"),
                )
            )

    def test_duplicate_discipline_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            minimal_spec(
                disciplines=(DisciplineSpec.fifo(), DisciplineSpec.fifo())
            )

    def test_establish_order_must_name_known_flows(self):
        with pytest.raises(ValueError, match="unknown flows"):
            minimal_spec(establish_order=("ghost",))

    def test_establish_order_rejects_duplicates(self):
        with pytest.raises(ValueError, match="repeat"):
            minimal_spec(establish_order=("f0", "f0"))

    def test_at_least_one_discipline(self):
        with pytest.raises(ValueError, match="discipline"):
            minimal_spec(disciplines=())

    def test_replace_returns_modified_copy(self):
        spec = minimal_spec()
        other = spec.replace(seed=99)
        assert other.seed == 99
        assert spec.seed == 1
        assert other.flows == spec.flows

    def test_lookups(self):
        spec = minimal_spec()
        assert spec.flow("f0").name == "f0"
        assert spec.discipline("FIFO").kind == "fifo"
        with pytest.raises(KeyError):
            spec.flow("nope")


class TestJsonRoundTrip:
    def test_round_trip_preserves_spec(self):
        spec = minimal_spec(
            flows=(
                FlowSpec(
                    "g",
                    "src-host",
                    "dst-host",
                    request=GuaranteedRequest(clock_rate_bps=170_000),
                    service_class=ServiceClass.GUARANTEED,
                ),
                FlowSpec(
                    "p",
                    "src-host",
                    "dst-host",
                    request=PredictedRequest(
                        token_rate_bps=85_000,
                        bucket_depth_bits=50_000,
                        target_delay_seconds=0.3,
                    ),
                ),
            ),
            admission=AdmissionSpec(),
            establish_order=("g", "p"),
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_survives_json(self):
        import json

        spec = minimal_spec()
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec


class TestOutageSpec:
    def _with_outages(self, outages, **overrides):
        return minimal_spec(outages=outages, **overrides)

    def test_round_trip_explicit_and_sampled(self):
        spec = self._with_outages(
            OutageSpec(
                events=(OutageEvent(link="A->B", at=2.0, duration=1.0),),
                rate_per_second=0.25,
                mean_duration_seconds=0.8,
                correlated_links=2,
                links=("A->B",),
                start_after=5.0,
                max_outages=3,
            )
        )
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_to_dict_omits_outages_when_none(self):
        """Bit-identity guard: outage-free specs serialize exactly as
        they did before the control plane existed."""
        assert "outages" not in minimal_spec().to_dict()

    def test_event_validation(self):
        with pytest.raises(ValueError, match="at"):
            OutageEvent(link="A->B", at=-1.0, duration=1.0)
        with pytest.raises(ValueError, match="duration"):
            OutageEvent(link="A->B", at=1.0, duration=0.0)

    def test_spec_validation(self):
        with pytest.raises(ValueError, match="rate"):
            OutageSpec(rate_per_second=-0.1)
        with pytest.raises(ValueError, match="correlated"):
            OutageSpec(correlated_links=0)
        with pytest.raises(ValueError, match="max_outages"):
            OutageSpec(max_outages=0)

    def test_unknown_event_link_rejected(self):
        with pytest.raises(ValueError, match="unknown link"):
            self._with_outages(
                OutageSpec(events=(OutageEvent("ghost", at=1.0, duration=1.0),))
            )

    def test_unknown_candidate_links_rejected(self):
        with pytest.raises(ValueError, match="candidates"):
            self._with_outages(OutageSpec(rate_per_second=0.1, links=("ghost",)))

    def test_service_request_without_admission_rejected(self):
        with pytest.raises(ValueError, match="admission"):
            self._with_outages(
                OutageSpec(events=(OutageEvent("A->B", at=1.0, duration=1.0),)),
                flows=(
                    FlowSpec(
                        "p",
                        "src-host",
                        "dst-host",
                        request=PredictedRequest(
                            token_rate_bps=85_000,
                            bucket_depth_bits=50_000,
                            target_delay_seconds=0.3,
                        ),
                    ),
                ),
            )
