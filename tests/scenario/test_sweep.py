"""Tests for parameter/seed sweeps and multiprocess fan-out."""

import pytest

from repro.scenario import DisciplineSpec, ScenarioBuilder, expand, sweep


def base_spec(duration=10.0):
    return (
        ScenarioBuilder("sweep-base")
        .single_link()
        .paper_flows(3)
        .disciplines(
            DisciplineSpec.wfq(equal_share_flows=3), DisciplineSpec.fifo()
        )
        .duration(duration)
        .seed(1)
        .build()
    )


class TestExpand:
    def test_seeds_expand_in_order(self):
        specs = expand(base_spec(), seeds=[4, 5, 6])
        assert [s.seed for s in specs] == [4, 5, 6]

    def test_overrides_cross_seeds(self):
        specs = expand(
            base_spec(), over=[{"duration": 5.0}, {"duration": 7.0}], seeds=[1, 2]
        )
        assert [(s.duration, s.seed) for s in specs] == [
            (5.0, 1),
            (5.0, 2),
            (7.0, 1),
            (7.0, 2),
        ]

    def test_whole_spec_override(self):
        other = base_spec().replace(name="other")
        specs = expand(base_spec(), over=[other], seeds=[9])
        assert specs[0].name == "other"
        assert specs[0].seed == 9

    def test_whole_spec_override_keeps_its_own_seed(self):
        """Without an explicit seed list, a replacement spec's seed must
        survive expansion rather than being clobbered by the base's."""
        arm = base_spec().replace(name="arm-b", seed=7)
        specs = expand(base_spec(), over=[{}, arm])
        assert [(s.name, s.seed) for s in specs] == [
            ("sweep-base", 1),
            ("arm-b", 7),
        ]

    def test_empty_inputs_rejected(self):
        with pytest.raises(ValueError):
            expand(base_spec(), over=[])
        with pytest.raises(ValueError):
            expand(base_spec(), seeds=[])


class TestSweepSerial:
    def test_one_result_per_run_in_order(self):
        results = sweep(base_spec(), seeds=[3, 4])
        assert [r.seed for r in results] == [3, 4]
        for result in results:
            assert result.disciplines == ("WFQ", "FIFO")

    def test_paired_seeds_across_overrides(self):
        """Flows with the same names see identical arrivals across
        overrides that share a seed (streams keyed by flow name only)."""
        results = sweep(
            base_spec(),
            over=[{"name": "arm-a"}, {"name": "arm-b"}],
            seeds=[7],
        )
        a, b = results
        for flow in ("flow-0", "flow-1", "flow-2"):
            assert (
                a.run("FIFO").flow(flow).generated
                == b.run("FIFO").flow(flow).generated
            )


class TestSweepParallel:
    @pytest.fixture(scope="class")
    def serial_and_parallel(self):
        spec = base_spec(duration=20.0)
        seeds = [1, 2, 3, 4, 5, 6, 7, 8]
        serial = sweep(spec, seeds=seeds)
        parallel = sweep(spec, seeds=seeds, workers=4)
        return serial, parallel

    def test_parallel_identical_to_serial(self, serial_and_parallel):
        serial, parallel = serial_and_parallel
        assert [r.comparable_dict() for r in serial] == [
            r.comparable_dict() for r in parallel
        ]

    def test_parallel_uses_multiple_processes(self, serial_and_parallel):
        import os

        __, parallel = serial_and_parallel
        pids = {
            run.worker_pid for result in parallel for run in result.runs
        }
        assert os.getpid() not in pids  # ran in worker processes...
        assert len(pids) > 1  # ...and on more than one of them

    def test_serial_runs_in_this_process(self, serial_and_parallel):
        import os

        serial, __ = serial_and_parallel
        assert {
            run.worker_pid for result in serial for run in result.runs
        } == {os.getpid()}
