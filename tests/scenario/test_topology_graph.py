"""Graph-native topology layer: compile equivalence, heterogeneous links,
per-port disciplines, and routing-error surfacing."""

import json

import pytest

from repro.net.routing import RoutingError
from repro.net.topology import paper_figure1_topology, single_link_topology
from repro.sched.fifo import FifoScheduler
from repro.sched.wfq import WfqScheduler
from repro.scenario import (
    DisciplineSpec,
    FlowSpec,
    ScenarioBuilder,
    ScenarioRunner,
    TopologySpec,
    resolve_port_discipline,
)
from repro.sim.engine import Simulator


def fifo_factory(name, link):
    return FifoScheduler()


class TestLegacyKindsCompileToGraph:
    """The named constructors produce the same live networks the legacy
    one-call builders do — structure for structure."""

    def test_single_link_matches_legacy(self):
        spec = TopologySpec.single_link()
        net = spec.build(Simulator(), fifo_factory)
        legacy = single_link_topology(Simulator(), fifo_factory)
        assert list(net.switches) == list(legacy.switches)
        assert list(net.links) == list(legacy.links)
        assert list(net.hosts) == list(legacy.hosts)

    def test_figure1_matches_legacy(self):
        spec = TopologySpec.figure1(duplex=True)
        net = spec.build(Simulator(), fifo_factory)
        legacy = paper_figure1_topology(Simulator(), fifo_factory, duplex=True)
        assert list(net.links) == list(legacy.links)  # incl. insertion order
        assert list(net.hosts) == list(legacy.hosts)

    def test_compiled_specs_serialize_as_graphs(self):
        spec = TopologySpec.chain(3)
        payload = json.loads(json.dumps(spec.to_dict()))
        assert payload["nodes"] == ["S-1", "S-2", "S-3"]
        assert [l["src"] for l in payload["links"]] == ["S-1", "S-2"]
        assert TopologySpec.from_dict(payload) == spec

    def test_legacy_serialized_form_still_loads(self):
        """Pre-graph payloads (kind + scalars) recompile to graph specs."""
        payload = {
            "kind": "chain",
            "num_switches": 3,
            "rate_bps": 64_000,
            "buffer_packets": 10,
            "duplex": True,
        }
        spec = TopologySpec.from_dict(payload)
        assert spec == TopologySpec.chain(
            3, rate_bps=64_000, buffer_packets=10, duplex=True
        )


class TestHeterogeneousGraphs:
    def test_per_link_rates_and_buffers(self):
        spec = TopologySpec.graph(
            nodes=["A", "B", "C"],
            links=[
                {"src": "A", "dst": "B", "rate_bps": 1_000_000,
                 "buffer_packets": 100},
                {"src": "B", "dst": "C", "rate_bps": 64_000,
                 "buffer_packets": 5, "propagation_delay": 0.01},
            ],
            host_attachments=[("h-a", "A"), ("h-c", "C")],
        )
        net = spec.build(Simulator(), fifo_factory)
        assert net.links["A->B"].rate_bps == 1_000_000
        assert net.links["B->C"].rate_bps == 64_000
        assert net.links["B->C"].propagation_delay == 0.01
        assert net.ports["B->C"].buffer_packets == 5
        assert net.path("h-a", "h-c") == ["h-a", "A", "B", "C", "h-c"]

    def test_branching_merge_graph_routes_each_flow(self):
        """Two access switches feed one bottleneck — the merge shape the
        legacy kinds cannot express."""
        spec = TopologySpec.graph(
            nodes=["L1", "L2", "M", "R"],
            links=[
                {"src": "L1", "dst": "M"},
                {"src": "L2", "dst": "M"},
                {"src": "M", "dst": "R"},
            ],
            host_attachments=[("h1", "L1"), ("h2", "L2"), ("sink", "R")],
        )
        net = spec.build(Simulator(), fifo_factory)
        assert net.link_names_on_path("h1", "sink") == ["L1->M", "M->R"]
        assert net.link_names_on_path("h2", "sink") == ["L2->M", "M->R"]


class TestPerPortDisciplines:
    def chain_spec(self, discipline):
        return (
            ScenarioBuilder("hetero")
            .chain(3)
            .add_flow("f0", "Host-1", "Host-3")
            .discipline(discipline)
            .duration(5.0)
            .warmup(0.5)
            .build()
        )

    def test_resolution_order_and_fallback(self):
        base = DisciplineSpec.fifo(name="mixed")
        spec = base.override("S-2->*", DisciplineSpec.wfq()).override(
            "*", DisciplineSpec.round_robin()
        )
        assert resolve_port_discipline(spec, "S-2->S-3").kind == "wfq"
        assert resolve_port_discipline(spec, "S-1->S-2").kind == "round_robin"
        assert resolve_port_discipline(base, "S-1->S-2") is base

    def test_fifo_edges_wfq_bottleneck(self):
        """The ISSUE's flagship mix: FIFO edge ports, WFQ at the
        bottleneck — one discipline entry, two scheduler types, and the
        result reports which port got which."""
        mixed = DisciplineSpec.fifo(name="edge-fifo/wfq-core").override(
            "S-2->S-3", DisciplineSpec.wfq(auto_register_rate_bps=100_000)
        )
        context = ScenarioRunner(self.chain_spec(mixed)).build()
        assert isinstance(context.net.ports["S-1->S-2"].scheduler, FifoScheduler)
        assert isinstance(context.net.ports["S-2->S-3"].scheduler, WfqScheduler)
        run = context.run().collect()
        assert run.port_discipline("S-1->S-2") == "edge-fifo/wfq-core"
        assert run.port_discipline("S-2->S-3") == "WFQ"
        assert run.flow("f0").recorded > 0
        # The per-hop queueing profile covers both ports.
        assert dict(run.link_queueing).keys() == {"S-1->S-2", "S-2->S-3"}

    def test_overrides_round_trip_through_json(self):
        mixed = DisciplineSpec.fifo(name="mixed").override(
            "*->S-3", DisciplineSpec.wfq(equal_share_flows=4)
        )
        assert DisciplineSpec.from_dict(
            json.loads(json.dumps(mixed.to_dict()))
        ) == mixed

    def test_nested_overrides_rejected(self):
        inner = DisciplineSpec.fifo().override("x", DisciplineSpec.wfq())
        with pytest.raises(ValueError, match="must not carry"):
            DisciplineSpec.fifo(name="outer").override("*", inner)


class TestMergeLinkAdmission:
    """Admission where paths converge: the shared link is the arbiter."""

    def merge_spec(self):
        topology = TopologySpec.graph(
            nodes=["L1", "L2", "M", "R"],
            links=[
                {"src": "L1", "dst": "M"},
                {"src": "L2", "dst": "M"},
                {"src": "M", "dst": "R"},
            ],
            host_attachments=[("h1", "L1"), ("h2", "L2"), ("sink", "R")],
        )
        from repro.scenario import GuaranteedRequest

        return (
            ScenarioBuilder("merge-admission")
            .topology(topology)
            .add_flow(
                "g1", "h1", "sink",
                request=GuaranteedRequest(clock_rate_bps=500_000),
            )
            .add_flow(
                "g2", "h2", "sink",
                request=GuaranteedRequest(clock_rate_bps=500_000),
            )
            .discipline(DisciplineSpec.unified())
            .admission(realtime_quota=0.9)
            .duration(5.0)
            .build()
        )

    def test_second_branch_rejected_at_the_merge_link_only(self):
        from repro.core.signaling import FlowEstablishmentError

        with pytest.raises(FlowEstablishmentError) as excinfo:
            ScenarioRunner(self.merge_spec()).build()
        # g2's own branch link had room; the shared M->R link did not.
        decisions = excinfo.value.decisions
        assert decisions[-1].link_name == "M->R"
        assert not decisions[-1].accepted
        assert all(d.accepted for d in decisions[:-1])

    def test_decisions_for_merge_link_show_both_flows(self):
        from repro.core.signaling import FlowEstablishmentError

        spec = self.merge_spec()
        context = None
        with pytest.raises(FlowEstablishmentError):
            context = ScenarioRunner(spec).build()
        # Rebuild flow-by-flow to inspect the controller's per-link log.
        single = spec.replace(flows=(spec.flow("g1"),))
        context = ScenarioRunner(single).build()
        merge_log = context.admission.decisions_for("M->R")
        assert [d.accepted for d in merge_log] == [True]
        branch_log = context.admission.decisions_for("L2->M")
        assert branch_log == []


class TestRoutingErrorSurfacing:
    def disconnected_spec(self, **flow_kwargs):
        topology = TopologySpec.graph(
            nodes=["A", "B"],
            links=[],  # no inter-switch connectivity at all
            host_attachments=[("h-a", "A"), ("h-b", "B")],
        )
        return (
            ScenarioBuilder("disconnected")
            .topology(topology)
            .add_flow("f0", "h-a", "h-b", **flow_kwargs)
            .discipline(DisciplineSpec.fifo())
            .duration(5.0)
            .build()
        )

    def test_unroutable_flow_raises_at_build_with_flow_named(self):
        with pytest.raises(RoutingError, match="f0"):
            ScenarioRunner(self.disconnected_spec()).build()

    def test_unknown_host_rejected_at_spec_construction(self):
        with pytest.raises(ValueError, match="ghost-host"):
            (
                ScenarioBuilder("bad")
                .single_link()
                .add_flow("f0", "src-host", "ghost-host")
                .discipline(DisciplineSpec.fifo())
                .build()
            )
