"""Tests for VirtualClock, round robin, DRR, and EDF baselines."""

import pytest

from repro.sched.edf import EdfScheduler
from repro.sched.round_robin import DeficitRoundRobinScheduler, RoundRobinScheduler
from repro.sched.virtual_clock import VirtualClockScheduler
from tests.conftest import make_packet


class TestVirtualClock:
    def test_stamp_advances_by_size_over_rate(self):
        sched = VirtualClockScheduler(rates_bps={"a": 1000.0})
        p1 = make_packet(flow_id="a", size_bits=1000)
        p2 = make_packet(flow_id="a", size_bits=1000)
        sched.enqueue(p1, 0.0)
        sched.enqueue(p2, 0.0)
        assert sched._vc["a"] == pytest.approx(2.0)

    def test_idle_flow_anchors_to_real_time(self):
        """VirtualClock's defining difference from WFQ: an idle flow's
        stamp resets to `now`, it earns no credit."""
        sched = VirtualClockScheduler(rates_bps={"a": 1000.0})
        sched.enqueue(make_packet(flow_id="a"), 0.0)
        sched.dequeue(0.0)
        sched.enqueue(make_packet(flow_id="a"), 100.0)
        assert sched._vc["a"] == pytest.approx(101.0)

    def test_serves_in_stamp_order(self):
        sched = VirtualClockScheduler(rates_bps={"fast": 2000.0, "slow": 500.0})
        for i in range(3):
            sched.enqueue(make_packet(flow_id="slow", size_bits=1000, sequence=i), 0.0)
            sched.enqueue(make_packet(flow_id="fast", size_bits=1000, sequence=i), 0.0)
        order = [sched.dequeue(0.0).flow_id for _ in range(6)]
        # Fast flow's stamps: 0.5, 1.0, 1.5; slow: 2, 4, 6.
        assert order == ["fast", "fast", "fast", "slow", "slow", "slow"]

    def test_unknown_flow_refused_or_auto(self):
        strict = VirtualClockScheduler()
        assert not strict.enqueue(make_packet(flow_id="x"), 0.0)
        auto = VirtualClockScheduler(auto_register_rate=100.0)
        assert auto.enqueue(make_packet(flow_id="x"), 0.0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            VirtualClockScheduler(rates_bps={"a": 0.0})


class TestRoundRobin:
    def test_alternates_between_flows(self):
        sched = RoundRobinScheduler()
        for i in range(3):
            sched.enqueue(make_packet(flow_id="a", sequence=i), 0.0)
            sched.enqueue(make_packet(flow_id="b", sequence=i), 0.0)
        order = [sched.dequeue(0.0).flow_id for _ in range(6)]
        assert order == ["a", "b", "a", "b", "a", "b"]

    def test_skips_empty_flows(self):
        sched = RoundRobinScheduler()
        sched.enqueue(make_packet(flow_id="a", sequence=0), 0.0)
        sched.enqueue(make_packet(flow_id="b", sequence=0), 0.0)
        sched.enqueue(make_packet(flow_id="a", sequence=1), 0.0)
        assert [sched.dequeue(0.0).flow_id for _ in range(3)] == ["a", "b", "a"]

    def test_empty(self):
        assert RoundRobinScheduler().dequeue(0.0) is None

    def test_len(self):
        sched = RoundRobinScheduler()
        sched.enqueue(make_packet(flow_id="a"), 0.0)
        assert len(sched) == 1


class TestDeficitRoundRobin:
    def test_equal_quantum_alternates_uniform_packets(self):
        sched = DeficitRoundRobinScheduler(quantum_bits=1000)
        for i in range(4):
            sched.enqueue(make_packet(flow_id="a", size_bits=1000), 0.0)
            sched.enqueue(make_packet(flow_id="b", size_bits=1000), 0.0)
        order = [sched.dequeue(0.0).flow_id for _ in range(8)]
        assert order.count("a") == 4
        # No flow gets two turns in a row with equal quanta and sizes.
        assert all(x != y for x, y in zip(order, order[1:]))

    def test_big_packets_need_accumulated_credit(self):
        sched = DeficitRoundRobinScheduler(quantum_bits=500)
        sched.enqueue(make_packet(flow_id="a", size_bits=1000), 0.0)
        sched.enqueue(make_packet(flow_id="b", size_bits=250), 0.0)
        # b's small packet goes first: a must bank 2 quanta.
        assert sched.dequeue(0.0).flow_id == "b"
        assert sched.dequeue(0.0).flow_id == "a"

    def test_bandwidth_share_proportional_to_packet_budget(self):
        sched = DeficitRoundRobinScheduler(quantum_bits=1000)
        # a sends 500-bit packets, b sends 1000-bit: per round a sends two.
        for i in range(20):
            sched.enqueue(make_packet(flow_id="a", size_bits=500), 0.0)
        for i in range(10):
            sched.enqueue(make_packet(flow_id="b", size_bits=1000), 0.0)
        first_rounds = [sched.dequeue(0.0) for _ in range(9)]
        a_bits = sum(p.size_bits for p in first_rounds if p.flow_id == "a")
        b_bits = sum(p.size_bits for p in first_rounds if p.flow_id == "b")
        assert abs(a_bits - b_bits) <= 1000

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            DeficitRoundRobinScheduler(quantum_bits=0)

    def test_empty(self):
        assert DeficitRoundRobinScheduler().dequeue(0.0) is None


class TestEdf:
    def test_earliest_deadline_first(self):
        sched = EdfScheduler(delay_targets={"tight": 0.01, "loose": 1.0})
        loose = make_packet(flow_id="loose", sequence=0)
        tight = make_packet(flow_id="tight", sequence=1)
        sched.enqueue(loose, 0.0)
        sched.enqueue(tight, 0.0)
        assert sched.dequeue(0.0) is tight

    def test_uniform_targets_degenerate_to_fifo(self):
        """Section 5's pivotal observation: constant deadline offset =>
        EDF == FIFO."""
        sched = EdfScheduler(default_target=0.1)
        packets = [make_packet(flow_id=f"f{i}", sequence=i) for i in range(6)]
        for i, p in enumerate(packets):
            sched.enqueue(p, float(i))
        out = [sched.dequeue(10.0) for _ in range(6)]
        assert [p.sequence for p in out] == [0, 1, 2, 3, 4, 5]

    def test_arrival_time_matters(self):
        sched = EdfScheduler(delay_targets={"a": 0.5, "b": 0.1})
        early_loose = make_packet(flow_id="a")
        sched.enqueue(early_loose, 0.0)  # deadline 0.5
        late_tight = make_packet(flow_id="b")
        sched.enqueue(late_tight, 0.3)  # deadline 0.4
        assert sched.dequeue(0.3) is late_tight

    def test_set_target(self):
        sched = EdfScheduler()
        sched.set_target("x", 0.25)
        assert sched.deadline_of(make_packet(flow_id="x"), 1.0) == pytest.approx(1.25)

    def test_negative_target_rejected(self):
        with pytest.raises(ValueError):
            EdfScheduler(default_target=-1.0)
        with pytest.raises(ValueError):
            EdfScheduler(delay_targets={"a": -0.1})
        sched = EdfScheduler()
        with pytest.raises(ValueError):
            sched.set_target("x", -0.5)
