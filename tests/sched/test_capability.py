"""The explicit guaranteed-install capability interface.

The ROADMAP flagged a rate-vs-slots mixup: the signaling layer used to
duck-type ``install_guaranteed_flow`` / ``register_flow``, and slot-based
schedulers (HRR) interpret ``register_flow``'s second argument as slots per
frame, silently accepting a bits/s value.  ``Scheduler.install_guaranteed``
makes the capability explicit: rate-capable disciplines implement it,
everything else refuses loudly.
"""

import pytest

from repro.core.signaling import FlowEstablishmentError, SignalingAgent
from repro.net.link import Link
from repro.net.port import OutputPort
from repro.sched.base import GuaranteedServiceUnsupported
from repro.sched.fifo import FifoScheduler
from repro.sched.fifoplus import FifoPlusScheduler
from repro.sched.nonwork import HrrScheduler, StopAndGoScheduler
from repro.sched.unified import UnifiedConfig, UnifiedScheduler
from repro.sched.virtual_clock import VirtualClockScheduler
from repro.sched.wfq import WfqScheduler
from repro.sim.engine import Simulator

RATE = 100_000.0


class TestRateCapableSchedulers:
    def test_wfq_installs_clock_rate(self):
        scheduler = WfqScheduler(capacity_bps=1e6)
        scheduler.install_guaranteed("f", RATE)
        assert scheduler.vt.is_registered("f")
        assert scheduler.vt.rate_of("f") == RATE
        assert scheduler.supports_guaranteed

    def test_virtual_clock_installs_rate(self):
        scheduler = VirtualClockScheduler()
        scheduler.install_guaranteed("f", RATE)
        assert scheduler._rates["f"] == RATE
        assert scheduler.supports_guaranteed

    def test_unified_installs_and_shrinks_pseudo_flow(self):
        scheduler = UnifiedScheduler(UnifiedConfig(capacity_bps=1e6))
        scheduler.install_guaranteed("f", RATE)
        assert scheduler.guaranteed_flows() == {"f": RATE}

    def test_invalid_rate_still_raises_value_error(self):
        scheduler = WfqScheduler(capacity_bps=1e6)
        with pytest.raises(ValueError):
            scheduler.install_guaranteed("f", -1.0)


class TestIncapableSchedulersRefuse:
    @pytest.mark.parametrize(
        "make",
        [
            lambda sim: FifoScheduler(),
            lambda sim: FifoPlusScheduler(),
            lambda sim: StopAndGoScheduler(sim, frame_seconds=0.05),
            lambda sim: HrrScheduler(sim, frame_seconds=0.05),
        ],
    )
    def test_refuses_bit_rate_install(self, sim, make):
        scheduler = make(sim)
        assert not scheduler.supports_guaranteed
        with pytest.raises(GuaranteedServiceUnsupported):
            scheduler.install_guaranteed("f", RATE)

    def test_hrr_rate_is_never_silently_slots(self, sim):
        """The exact ROADMAP mixup: installing 100 kbit/s must not create a
        100000-slot allotment."""
        scheduler = HrrScheduler(sim, frame_seconds=0.05)
        with pytest.raises(GuaranteedServiceUnsupported):
            scheduler.install_guaranteed("f", RATE)
        assert "f" not in scheduler._slots

    def test_hrr_explicit_conversion(self, sim):
        scheduler = HrrScheduler(sim, frame_seconds=0.05)
        # 100 kbit/s of 1000-bit packets = 100 pkt/s = 5 packets per 50 ms
        # frame.
        slots = scheduler.slots_for_rate(RATE, packet_size_bits=1000)
        assert slots == 5
        scheduler.register_flow("f", slots)
        assert scheduler._slots["f"] == 5
        # A trickle flow still needs one slot.
        assert scheduler.slots_for_rate(10.0, packet_size_bits=1000) == 1
        with pytest.raises(ValueError):
            scheduler.slots_for_rate(-5.0, packet_size_bits=1000)
        with pytest.raises(ValueError):
            scheduler.slots_for_rate(RATE, packet_size_bits=0)


class TestSignalingUsesCapability:
    def _port(self, sim, scheduler):
        link = Link(sim, "A->B", rate_bps=1e6)
        return OutputPort(sim, "A->B", scheduler, link)

    def test_install_goes_through_capability(self, sim):
        scheduler = WfqScheduler(capacity_bps=1e6)
        port = self._port(sim, scheduler)
        SignalingAgent._install_clock_rate(port, "f", RATE)
        assert scheduler.vt.is_registered("f")

    def test_incapable_scheduler_surfaces_establishment_error(self, sim):
        port = self._port(sim, StopAndGoScheduler(sim, frame_seconds=0.05))
        with pytest.raises(FlowEstablishmentError):
            SignalingAgent._install_clock_rate(port, "f", RATE)

    def test_hrr_mixup_is_an_establishment_error(self, sim):
        """Pre-fix, this silently installed RATE as a slot count."""
        scheduler = HrrScheduler(sim, frame_seconds=0.05)
        port = self._port(sim, scheduler)
        with pytest.raises(FlowEstablishmentError):
            SignalingAgent._install_clock_rate(port, "f", RATE)
        assert "f" not in scheduler._slots
