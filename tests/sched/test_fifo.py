"""Tests for the FIFO scheduler."""

from repro.sched.fifo import FifoScheduler
from tests.conftest import make_packet


class TestFifo:
    def test_order_preserved(self):
        sched = FifoScheduler()
        packets = [make_packet(sequence=i) for i in range(5)]
        for p in packets:
            sched.enqueue(p, 0.0)
        out = [sched.dequeue(0.0) for _ in range(5)]
        assert out == packets

    def test_empty_dequeue_returns_none(self):
        assert FifoScheduler().dequeue(0.0) is None

    def test_len(self):
        sched = FifoScheduler()
        assert len(sched) == 0
        sched.enqueue(make_packet(), 0.0)
        sched.enqueue(make_packet(), 0.0)
        assert len(sched) == 2
        sched.dequeue(0.0)
        assert len(sched) == 1

    def test_interleaved_operations(self):
        sched = FifoScheduler()
        a, b, c = (make_packet(sequence=i) for i in range(3))
        sched.enqueue(a, 0.0)
        assert sched.dequeue(0.0) is a
        sched.enqueue(b, 1.0)
        sched.enqueue(c, 2.0)
        assert sched.dequeue(2.0) is b
        assert sched.dequeue(2.0) is c

    def test_evict_tail_removes_newest(self):
        sched = FifoScheduler()
        a, b = make_packet(sequence=0), make_packet(sequence=1)
        sched.enqueue(a, 0.0)
        sched.enqueue(b, 0.0)
        assert sched.evict_tail() is b
        assert sched.dequeue(0.0) is a

    def test_evict_tail_empty(self):
        assert FifoScheduler().evict_tail() is None

    def test_no_push_out_by_default(self):
        sched = FifoScheduler()
        sched.enqueue(make_packet(), 0.0)
        assert sched.select_push_out(make_packet()) is None
