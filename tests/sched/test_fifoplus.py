"""Tests for FIFO+ (Section 6)."""

import pytest

from repro.sched.fifoplus import ClassDelayTracker, FifoPlusScheduler
from tests.conftest import make_packet


class TestClassDelayTracker:
    def test_per_class_averages_are_separate(self):
        tracker = ClassDelayTracker(gain=1.0)
        tracker.record(0, 1.0)
        tracker.record(1, 9.0)
        assert tracker.average(0) == 1.0
        assert tracker.average(1) == 9.0

    def test_unseen_class_average_is_zero(self):
        assert ClassDelayTracker().average(3) == 0.0


class TestFifoPlusOrdering:
    def test_zero_offsets_behave_fifo(self):
        """First hop: all offsets zero => pure FIFO (Section 6 degeneracy)."""
        sched = FifoPlusScheduler()
        packets = []
        for i in range(5):
            p = make_packet(sequence=i, enqueued_at=float(i))
            packets.append(p)
            sched.enqueue(p, float(i))
        out = [sched.dequeue(10.0) for _ in range(5)]
        assert [p.sequence for p in out] == [0, 1, 2, 3, 4]

    def test_positive_offset_jumps_queue(self):
        """A packet that was unlucky upstream (positive offset) is treated
        as if it arrived earlier and overtakes on-time packets."""
        sched = FifoPlusScheduler()
        on_time = make_packet(sequence=0, enqueued_at=10.0)
        unlucky = make_packet(sequence=1, enqueued_at=10.5)
        unlucky.jitter_offset = 2.0  # expected arrival 8.5 < 10.0
        sched.enqueue(on_time, 10.0)
        sched.enqueue(unlucky, 10.5)
        assert sched.dequeue(11.0).sequence == 1

    def test_negative_offset_waits(self):
        sched = FifoPlusScheduler()
        lucky = make_packet(sequence=0, enqueued_at=10.0)
        lucky.jitter_offset = -5.0  # expected arrival 15.0
        normal = make_packet(sequence=1, enqueued_at=11.0)
        sched.enqueue(lucky, 10.0)
        sched.enqueue(normal, 11.0)
        assert sched.dequeue(12.0).sequence == 1

    def test_ties_resolved_fifo(self):
        sched = FifoPlusScheduler()
        a = make_packet(sequence=0, enqueued_at=5.0)
        b = make_packet(sequence=1, enqueued_at=5.0)
        sched.enqueue(a, 5.0)
        sched.enqueue(b, 5.0)
        assert sched.dequeue(6.0) is a


class TestOffsetAccumulation:
    def test_offset_updated_with_delay_minus_average(self):
        tracker = ClassDelayTracker(gain=1.0)
        sched = FifoPlusScheduler(delay_tracker=tracker)
        # Prime the class average to 1.0s.
        tracker.record(0, 1.0)
        packet = make_packet(enqueued_at=0.0)
        sched.enqueue(packet, 0.0)
        out = sched.dequeue(3.0)  # waited 3.0 against average 1.0
        assert out.jitter_offset == pytest.approx(2.0)

    def test_offset_accumulates_across_hops(self):
        tracker = ClassDelayTracker(gain=1.0)
        packet = make_packet(enqueued_at=0.0)
        # Hop 1: waits 2.0, average starts at 0 -> offset +2.
        hop1 = FifoPlusScheduler(delay_tracker=ClassDelayTracker(gain=1.0))
        hop1.enqueue(packet, 0.0)
        hop1.dequeue(2.0)
        assert packet.jitter_offset == pytest.approx(2.0)
        # Hop 2: average primed to 3.0; waits 1.0 -> offset 2 + (1-3) = 0.
        hop2 = FifoPlusScheduler(delay_tracker=tracker)
        tracker.record(0, 3.0)
        packet.enqueued_at = 10.0
        hop2.enqueue(packet, 10.0)
        hop2.dequeue(11.0)
        assert packet.jitter_offset == pytest.approx(0.0)

    def test_average_tracks_ewma(self):
        tracker = ClassDelayTracker(gain=0.5)
        sched = FifoPlusScheduler(delay_tracker=tracker)
        p1 = make_packet(enqueued_at=0.0)
        sched.enqueue(p1, 0.0)
        sched.dequeue(4.0)  # first sample initialises average to 4.0
        assert tracker.average(0) == pytest.approx(4.0)
        p2 = make_packet(enqueued_at=4.0)
        sched.enqueue(p2, 4.0)
        sched.dequeue(6.0)  # sample 2.0 -> avg 3.0
        assert tracker.average(0) == pytest.approx(3.0)


class TestStaleDiscard:
    def test_stale_packet_refused(self):
        sched = FifoPlusScheduler(stale_offset_threshold=1.0)
        stale = make_packet()
        stale.jitter_offset = 2.0
        assert not sched.enqueue(stale, 0.0)
        assert sched.stale_discards == 1

    def test_fresh_packet_accepted(self):
        sched = FifoPlusScheduler(stale_offset_threshold=1.0)
        fresh = make_packet()
        fresh.jitter_offset = 0.5
        assert sched.enqueue(fresh, 0.0)

    def test_disabled_by_default(self):
        sched = FifoPlusScheduler()
        very_stale = make_packet()
        very_stale.jitter_offset = 1e9
        assert sched.enqueue(very_stale, 0.0)


class TestEvictTail:
    def test_evicts_last_in_schedule(self):
        sched = FifoPlusScheduler()
        early = make_packet(sequence=0, enqueued_at=1.0)
        late = make_packet(sequence=1, enqueued_at=9.0)
        sched.enqueue(early, 1.0)
        sched.enqueue(late, 9.0)
        assert sched.evict_tail() is late
        assert len(sched) == 1
        assert sched.dequeue(10.0) is early

    def test_empty(self):
        assert FifoPlusScheduler().evict_tail() is None
