"""Tests for the GPS fluid reference model and the P-G bound."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.gps import FluidArrival, GpsFluidModel
from repro.traffic.token_bucket import minimal_bucket_depth


class TestGpsBasics:
    def test_single_flow_uses_full_capacity(self):
        model = GpsFluidModel(1000.0, {"a": 500.0})
        departures = model.run([FluidArrival(0.0, "a", 1000.0)])
        # Sole active flow gets the whole link: 1000 bits at 1000 bps.
        assert departures[0].delay == pytest.approx(1.0)

    def test_two_flows_share_in_proportion(self):
        model = GpsFluidModel(1000.0, {"a": 750.0, "b": 250.0})
        departures = model.run(
            [FluidArrival(0.0, "a", 750.0), FluidArrival(0.0, "b", 250.0)]
        )
        # Both drain at their proportional rate; both finish at t=1.
        assert departures[0].departure_time == pytest.approx(1.0)
        assert departures[1].departure_time == pytest.approx(1.0)

    def test_departed_flow_speeds_up_survivor(self):
        model = GpsFluidModel(1000.0, {"a": 500.0, "b": 500.0})
        departures = model.run(
            [FluidArrival(0.0, "a", 500.0), FluidArrival(0.0, "b", 2000.0)]
        )
        by_flow = {d.arrival.flow_id: d for d in departures}
        # a: 500 bits at 500 bps -> gone at t=1.  b: 500 bits by t=1, then
        # full link: (2000-500)/1000 = 1.5 more -> t=2.5.
        assert by_flow["a"].departure_time == pytest.approx(1.0)
        assert by_flow["b"].departure_time == pytest.approx(2.5)

    def test_sequential_arrivals_fifo_within_flow(self):
        model = GpsFluidModel(1000.0, {"a": 1000.0})
        departures = model.run(
            [FluidArrival(0.0, "a", 1000.0), FluidArrival(0.5, "a", 1000.0)]
        )
        assert departures[0].departure_time == pytest.approx(1.0)
        assert departures[1].departure_time == pytest.approx(2.0)

    def test_idle_gap_between_arrivals(self):
        model = GpsFluidModel(1000.0, {"a": 1000.0})
        departures = model.run(
            [FluidArrival(0.0, "a", 100.0), FluidArrival(5.0, "a", 100.0)]
        )
        assert departures[0].departure_time == pytest.approx(0.1)
        assert departures[1].departure_time == pytest.approx(5.1)

    def test_unknown_flow_rejected(self):
        model = GpsFluidModel(1000.0, {"a": 1.0})
        with pytest.raises(KeyError):
            model.run([FluidArrival(0.0, "zzz", 1.0)])

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            GpsFluidModel(0.0, {"a": 1.0})
        with pytest.raises(ValueError):
            GpsFluidModel(100.0, {"a": 0.0})


class TestParekhGallagerBound:
    """max GPS delay of a flow <= b(r)/r, regardless of cross traffic."""

    @given(
        st.lists(  # the measured flow's arrivals
            st.tuples(
                st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
                st.floats(min_value=10.0, max_value=500.0, allow_nan=False),
            ),
            min_size=1,
            max_size=25,
        ),
        st.lists(  # adversarial cross traffic (unbounded burstiness)
            st.tuples(
                st.floats(min_value=0.0, max_value=20.0, allow_nan=False),
                st.floats(min_value=10.0, max_value=2000.0, allow_nan=False),
            ),
            min_size=0,
            max_size=25,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_bound_holds_under_any_cross_traffic(self, flow_raw, cross_raw):
        capacity = 1000.0
        rate_a = 400.0
        rate_b = 600.0
        flow_arrivals = sorted(flow_raw)
        depth = minimal_bucket_depth(flow_arrivals, rate_a)
        arrivals = [FluidArrival(t, "a", s) for t, s in flow_arrivals]
        arrivals += [FluidArrival(t, "b", s) for t, s in sorted(cross_raw)]
        model = GpsFluidModel(capacity, {"a": rate_a, "b": rate_b})
        worst = model.max_delay(arrivals, "a")
        assert worst <= depth / rate_a + 1e-6

    def test_bound_tight_for_greedy_burst_on_saturated_link(self):
        capacity = 1000.0
        model = GpsFluidModel(capacity, {"a": 250.0, "b": 750.0})
        b = 1000.0
        arrivals = [
            FluidArrival(0.0, "a", b),
            # b keeps the link saturated so a gets exactly its share.
            FluidArrival(0.0, "b", 50_000.0),
        ]
        worst = model.max_delay(arrivals, "a")
        assert worst == pytest.approx(b / 250.0, rel=1e-6)
