"""Tests for the Jacobson-Floyd related-work scheduler (Section 11)."""

import pytest

from repro.net.packet import ServiceClass
from repro.sched.jacobson_floyd import JacobsonFloydScheduler
from tests.conftest import make_packet


def predicted(flow_id, priority=0, seq=0, enq=0.0):
    return make_packet(
        flow_id=flow_id,
        service_class=ServiceClass.PREDICTED,
        priority_class=priority,
        sequence=seq,
        enqueued_at=enq,
    )


class TestStructure:
    def test_rejects_zero_classes(self):
        with pytest.raises(ValueError):
            JacobsonFloydScheduler(num_classes=0)

    def test_datagram_rides_bottom_level(self):
        sched = JacobsonFloydScheduler(num_classes=2)
        sched.enqueue(make_packet(flow_id="d"), 0.0)
        sched.enqueue(predicted("p", priority=1), 0.0)
        assert sched.dequeue(0.0).flow_id == "p"
        assert sched.dequeue(0.0).flow_id == "d"

    def test_priority_levels_ordered(self):
        sched = JacobsonFloydScheduler(num_classes=2)
        sched.enqueue(predicted("low", priority=1), 0.0)
        sched.enqueue(predicted("high", priority=0), 0.0)
        assert sched.dequeue(0.0).flow_id == "high"

    def test_overflow_priority_clamped(self):
        sched = JacobsonFloydScheduler(num_classes=2)
        assert sched.enqueue(predicted("p", priority=9), 0.0)
        assert sched.dequeue(0.0).flow_id == "p"


class TestRoundRobinWithinLevel:
    def test_flows_alternate_not_fifo(self):
        """The defining contrast with CSZ: within a level, a burst from
        one flow does NOT ride through as a clump."""
        sched = JacobsonFloydScheduler(num_classes=1)
        for seq in range(3):
            sched.enqueue(predicted("burster", seq=seq), 0.0)
        sched.enqueue(predicted("meek", seq=0), 0.0)
        order = [sched.dequeue(0.0).flow_id for _ in range(4)]
        # Round robin interleaves; FIFO would give b,b,b,meek.
        assert order == ["burster", "meek", "burster", "burster"]

    def test_aggregate_groups_share_a_slot(self):
        """Flows mapped to one group are FIFO inside it and round-robin
        against other groups ('combine the traffic ... into some number of
        aggregate groups, and do FIFO within each group')."""
        group_of = lambda packet: "voice" if packet.flow_id.startswith("v") else "video"
        sched = JacobsonFloydScheduler(num_classes=1, group_of=group_of)
        sched.enqueue(predicted("v1", seq=0), 0.0)
        sched.enqueue(predicted("v2", seq=1), 0.0)
        sched.enqueue(predicted("x1", seq=2), 0.0)
        order = [sched.dequeue(0.0).flow_id for _ in range(3)]
        # voice and video alternate; v1 precedes v2 inside the voice group.
        assert order == ["v1", "x1", "v2"]


class TestPerSwitchPolicing:
    def test_policer_drops_nonconforming(self):
        sched = JacobsonFloydScheduler(
            num_classes=1, police={"p": (1000.0, 2000.0)}
        )
        # Bucket depth = 2 packets; a 4-packet instantaneous burst loses 2.
        accepted = [
            sched.enqueue(predicted("p", seq=i), 0.0) for i in range(4)
        ]
        assert accepted == [True, True, False, False]
        assert sched.policed_drops == 2

    def test_policer_refills_over_time(self):
        sched = JacobsonFloydScheduler(
            num_classes=1, police={"p": (1000.0, 1000.0)}
        )
        assert sched.enqueue(predicted("p", seq=0), 0.0)
        assert not sched.enqueue(predicted("p", seq=1), 0.0)
        # One second at 1000 bit/s refills a full packet.
        assert sched.enqueue(predicted("p", seq=2), 1.0)

    def test_unpoliced_flows_unaffected(self):
        sched = JacobsonFloydScheduler(
            num_classes=1, police={"p": (1000.0, 1000.0)}
        )
        for seq in range(5):
            assert sched.enqueue(predicted("other", seq=seq), 0.0)

    def test_add_policer_later(self):
        sched = JacobsonFloydScheduler(num_classes=1)
        sched.add_policer("p", 1000.0, 1000.0)
        assert sched.enqueue(predicted("p"), 0.0)
        assert not sched.enqueue(predicted("p", seq=1), 0.0)

    def test_no_guaranteed_service(self):
        """The paper: 'there is no provision for guaranteed service in
        their mechanism' — guaranteed packets are just high-priority
        predicted traffic with no WFQ isolation (clamped into class 0)."""
        sched = JacobsonFloydScheduler(num_classes=2)
        g = make_packet(
            flow_id="g", service_class=ServiceClass.GUARANTEED,
            priority_class=0,
        )
        assert sched.enqueue(g, 0.0)
        assert not hasattr(sched, "install_guaranteed_flow")


class TestAccounting:
    def test_len_and_queue_lengths(self):
        sched = JacobsonFloydScheduler(num_classes=2)
        sched.enqueue(predicted("a", priority=0), 0.0)
        sched.enqueue(predicted("b", priority=1), 0.0)
        sched.enqueue(make_packet(flow_id="d"), 0.0)
        assert len(sched) == 3
        assert sched.queue_lengths() == {0: 1, 1: 1, 2: 1}
