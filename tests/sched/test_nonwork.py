"""Tests for the non-work-conserving baselines (Section 11)."""

import pytest

from repro.net.packet import ServiceClass
from repro.net.topology import single_link_topology
from repro.sched.nonwork import (
    HrrScheduler,
    JitterEddScheduler,
    StopAndGoScheduler,
)
from repro.sim.engine import Simulator
from tests.conftest import make_packet


class TestStopAndGo:
    def test_rejects_bad_frame(self, sim):
        with pytest.raises(ValueError):
            StopAndGoScheduler(sim, frame_seconds=0.0)

    def test_eligible_time_is_next_frame(self, sim):
        sched = StopAndGoScheduler(sim, frame_seconds=0.1)
        assert sched.eligible_time(0.05) == pytest.approx(0.1)
        assert sched.eligible_time(0.15) == pytest.approx(0.2)
        # A packet arriving exactly on a boundary belongs to the frame
        # that starts there, so it departs at the next boundary.
        assert sched.eligible_time(0.1) == pytest.approx(0.2)

    def test_holds_packet_until_frame_boundary(self, sim):
        sched = StopAndGoScheduler(sim, frame_seconds=0.1)
        packet = make_packet()
        sched.enqueue(packet, 0.05)
        # Not eligible inside the arrival frame.
        assert sched.dequeue(0.05) is None
        assert sched.dequeue(0.09) is None
        assert len(sched) == 1
        # Eligible from the next frame boundary.
        assert sched.dequeue(0.1) is packet

    def test_fifo_within_frame(self, sim):
        sched = StopAndGoScheduler(sim, frame_seconds=0.1)
        first = make_packet(sequence=0)
        second = make_packet(sequence=1)
        sched.enqueue(first, 0.01)
        sched.enqueue(second, 0.02)
        assert sched.dequeue(0.1) is first
        assert sched.dequeue(0.1) is second

    def test_per_switch_delay_bounded_by_two_frames(self, sim):
        """Golestani's bound: queueing delay in [0, 2T) per switch."""
        net = single_link_topology(
            sim,
            lambda n, l: StopAndGoScheduler(sim, frame_seconds=0.02),
            rate_bps=1_000_000,
        )
        delays = []
        port = net.port_for_link("A->B")
        port.on_depart.append(lambda p, now, wait: delays.append(wait))
        for i in range(50):
            sim.schedule(
                i * 0.011,
                lambda seq=i: port.enqueue(
                    make_packet(sequence=seq, destination="dst-host")
                ),
            )
        sim.run(until=2.0)
        assert len(delays) == 50
        assert all(0.0 <= d < 0.04 + 1e-9 for d in delays)
        # Non-work-conserving: some packets really were held (delay >=
        # reaching into the next frame), unlike FIFO on an idle link.
        assert max(delays) > 0.005

    def test_wakeup_resumes_transmission(self, sim):
        """A held packet must eventually depart without new arrivals."""
        net = single_link_topology(
            sim,
            lambda n, l: StopAndGoScheduler(sim, frame_seconds=0.05),
        )
        got = []
        net.hosts["dst-host"].register_flow_handler(
            "f", lambda packet: got.append(sim.now)
        )
        port = net.port_for_link("A->B")
        sim.schedule(0.01, lambda: port.enqueue(
            make_packet(destination="dst-host")))
        sim.run(until=1.0)
        assert len(got) == 1
        # Departed at the 0.05 boundary + 1 ms transmission.
        assert got[0] == pytest.approx(0.051, abs=1e-9)


class TestHrr:
    def test_rejects_bad_args(self, sim):
        with pytest.raises(ValueError):
            HrrScheduler(sim, frame_seconds=0.0)
        with pytest.raises(ValueError):
            HrrScheduler(sim, 0.1, slots_per_flow={"a": 0})
        with pytest.raises(ValueError):
            HrrScheduler(sim, 0.1, default_slots=0)

    def test_unknown_flow_refused_without_default(self, sim):
        sched = HrrScheduler(sim, 0.1, slots_per_flow={"a": 1})
        assert not sched.enqueue(make_packet(flow_id="x"), 0.0)
        assert sched.refused == 1

    def test_default_slots_auto_registers(self, sim):
        sched = HrrScheduler(sim, 0.1, default_slots=2)
        assert sched.enqueue(make_packet(flow_id="x"), 0.0)

    def test_slots_cap_per_frame(self, sim):
        sched = HrrScheduler(sim, frame_seconds=0.1, slots_per_flow={"a": 2})
        for i in range(5):
            sched.enqueue(make_packet(flow_id="a", sequence=i), 0.0)
        # Only 2 slots in this frame, even though the link is idle.
        assert sched.dequeue(0.0) is not None
        assert sched.dequeue(0.01) is not None
        assert sched.dequeue(0.02) is None
        assert len(sched) == 3
        # Next frame: credit renewed.
        assert sched.dequeue(0.1) is not None

    def test_credit_does_not_accumulate(self, sim):
        """An idle frame does not bank slots — the non-work-conserving
        property that bounds downstream bursts."""
        sched = HrrScheduler(sim, frame_seconds=0.1, slots_per_flow={"a": 1})
        # Flow idle during frames 0-4; then 3 packets arrive in frame 5.
        for i in range(3):
            sched.enqueue(make_packet(flow_id="a", sequence=i), 0.5)
        assert sched.dequeue(0.5) is not None
        assert sched.dequeue(0.51) is None  # only 1 slot, no banked credit

    def test_round_robin_between_flows(self, sim):
        sched = HrrScheduler(
            sim, frame_seconds=0.1, slots_per_flow={"a": 1, "b": 1}
        )
        sched.enqueue(make_packet(flow_id="a"), 0.0)
        sched.enqueue(make_packet(flow_id="b"), 0.0)
        served = {sched.dequeue(0.0).flow_id, sched.dequeue(0.0).flow_id}
        assert served == {"a", "b"}

    def test_rate_limited_end_to_end(self, sim):
        """10 slots per 0.1 s frame = at most ~100 pkt/s leaves the port,
        however fast the source pushes."""
        net = single_link_topology(
            sim,
            lambda n, l: HrrScheduler(
                sim, frame_seconds=0.1, slots_per_flow={"f": 10}
            ),
            buffer_packets=500,
        )
        got = []
        net.hosts["dst-host"].register_flow_handler(
            "f", lambda packet: got.append(sim.now)
        )
        port = net.port_for_link("A->B")
        for i in range(300):
            port.enqueue(make_packet(flow_id="f", sequence=i,
                                     destination="dst-host"))
        sim.run(until=2.0)
        # 2 seconds -> 20 frames -> at most 200 packets.
        assert len(got) <= 200
        assert len(got) >= 190  # and the slots are actually used


class TestJitterEdd:
    def test_rejects_bad_targets(self, sim):
        with pytest.raises(ValueError):
            JitterEddScheduler(sim, delay_targets={"a": 0.0})
        with pytest.raises(ValueError):
            JitterEddScheduler(sim, default_target=-1.0)
        sched = JitterEddScheduler(sim, default_target=0.1)
        with pytest.raises(ValueError):
            sched.set_target("a", 0.0)

    def test_unknown_flow_refused_without_default(self, sim):
        sched = JitterEddScheduler(sim, delay_targets={"a": 0.1})
        assert not sched.enqueue(make_packet(flow_id="x"), 0.0)
        assert sched.refused == 1

    def test_deadline_order_when_no_holds(self, sim):
        sched = JitterEddScheduler(
            sim, delay_targets={"tight": 0.01, "loose": 1.0}
        )
        loose = make_packet(flow_id="loose")
        tight = make_packet(flow_id="tight")
        sched.enqueue(loose, 0.0)
        sched.enqueue(tight, 0.0)
        assert sched.dequeue(0.0) is tight

    def test_ahead_packet_is_held(self, sim):
        sched = JitterEddScheduler(sim, default_target=0.1)
        early = make_packet(flow_id="f")
        early.jitter_offset = 0.05  # left the last hop 50 ms early
        sched.enqueue(early, 0.0)
        assert sched.dequeue(0.0) is None  # held
        assert sched.dequeue(0.04) is None
        assert sched.dequeue(0.05) is early

    def test_departure_stamps_new_ahead_time(self, sim):
        sched = JitterEddScheduler(sim, default_target=0.1)
        packet = make_packet(flow_id="f")
        sched.enqueue(packet, 0.0)  # deadline 0.1
        out = sched.dequeue(0.02)  # departs 80 ms early
        assert out is packet
        assert packet.jitter_offset == pytest.approx(0.08)

    def test_jitter_cancellation_over_two_hops(self, sim):
        """The defining property: hop-2 hold + hop-1 earliness = target, so
        total (hold + service) time is deterministic for an unloaded path."""
        sched1 = JitterEddScheduler(sim, default_target=0.1)
        sched2 = JitterEddScheduler(sim, default_target=0.1)
        packet = make_packet(flow_id="f")
        sched1.enqueue(packet, 0.0)
        out = sched1.dequeue(0.03)  # served 70 ms early at hop 1
        assert out.jitter_offset == pytest.approx(0.07)
        sched2.enqueue(out, 0.03)
        # Held until 0.03 + 0.07 = 0.10 — exactly one target after origin.
        assert sched2.dequeue(0.09) is None
        assert sched2.dequeue(0.10) is out

    def test_len_counts_held_and_ready(self, sim):
        sched = JitterEddScheduler(sim, default_target=0.1)
        ready = make_packet(flow_id="f", sequence=0)
        held = make_packet(flow_id="f", sequence=1)
        held.jitter_offset = 1.0
        sched.enqueue(ready, 0.0)
        sched.enqueue(held, 0.0)
        assert len(sched) == 2

    def test_wakeup_delivers_held_packet(self, sim):
        net = single_link_topology(
            sim, lambda n, l: JitterEddScheduler(sim, default_target=0.2)
        )
        got = []
        net.hosts["dst-host"].register_flow_handler(
            "f", lambda packet: got.append(sim.now)
        )
        packet = make_packet(flow_id="f", destination="dst-host")
        packet.jitter_offset = 0.05
        port = net.port_for_link("A->B")
        port.enqueue(packet)
        sim.run(until=1.0)
        assert len(got) == 1
        assert got[0] == pytest.approx(0.051, abs=1e-9)  # hold + 1 ms tx
