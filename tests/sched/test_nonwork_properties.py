"""Property-based tests for the non-work-conserving schedulers' invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import Packet
from repro.sched.nonwork import (
    HrrScheduler,
    JitterEddScheduler,
    StopAndGoScheduler,
)
from repro.sim.engine import Simulator
from tests.conftest import make_packet

arrival_times = st.lists(
    st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
    min_size=1,
    max_size=30,
)


def drain(scheduler, start, step=0.01, horizon=100.0):
    """Poll dequeue at fixed intervals; returns [(dequeue_time, packet)]."""
    out = []
    t = start
    while len(scheduler) and t < horizon:
        packet = scheduler.dequeue(t)
        if packet is not None:
            out.append((t, packet))
        else:
            t += step
    return out


class TestStopAndGoProperties:
    @given(arrivals=arrival_times, frame=st.floats(min_value=0.01, max_value=1.0))
    @settings(max_examples=50, deadline=None)
    def test_never_departs_in_arrival_frame(self, arrivals, frame):
        """For ANY arrival pattern, no packet leaves before the start of
        the frame after its arrival frame (Golestani's defining rule)."""
        sim = Simulator()
        sched = StopAndGoScheduler(sim, frame_seconds=frame)
        eligible = {}
        for i, when in enumerate(sorted(arrivals)):
            packet = make_packet(sequence=i)
            sched.enqueue(packet, when)
            eligible[packet.packet_id] = sched.eligible_time(when)
        for when, packet in drain(sched, start=0.0, step=frame / 7):
            assert when >= eligible[packet.packet_id] - 1e-9

    @given(arrivals=arrival_times)
    @settings(max_examples=30, deadline=None)
    def test_everything_eventually_departs(self, arrivals):
        sim = Simulator()
        sched = StopAndGoScheduler(sim, frame_seconds=0.1)
        for i, when in enumerate(sorted(arrivals)):
            sched.enqueue(make_packet(sequence=i), when)
        served = drain(sched, start=0.0)
        assert len(served) == len(arrivals)
        assert len(sched) == 0

    @given(arrivals=arrival_times)
    @settings(max_examples=30, deadline=None)
    def test_fifo_among_same_frame_arrivals(self, arrivals):
        """Packets of the same arrival frame depart in arrival order."""
        sim = Simulator()
        frame = 0.1
        sched = StopAndGoScheduler(sim, frame_seconds=frame)
        ordered = sorted(arrivals)
        for i, when in enumerate(ordered):
            sched.enqueue(make_packet(sequence=i), when)
        served = [p.sequence for __, p in drain(sched, start=0.0)]
        frames = [int(ordered[seq] / frame) for seq in range(len(ordered))]
        for a, b in zip(served, served[1:]):
            if frames[a] == frames[b]:
                assert a < b


class TestHrrProperties:
    @given(
        counts=st.lists(st.integers(min_value=0, max_value=10), min_size=2, max_size=4),
        slots=st.integers(min_value=1, max_value=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_per_frame_rate_never_exceeded(self, counts, slots):
        """In any frame, a flow departs at most ``slots`` packets —
        regardless of backlog or how often dequeue is polled."""
        sim = Simulator()
        frame = 0.1
        sched = HrrScheduler(sim, frame_seconds=frame, default_slots=slots)
        total = 0
        for flow_index, count in enumerate(counts):
            for seq in range(count):
                sched.enqueue(
                    make_packet(flow_id=f"f{flow_index}", sequence=seq), 0.0
                )
                total += 1
        departures = drain(sched, start=0.0, step=frame / 5)
        assert len(departures) == total
        per_flow_frame = {}
        for when, packet in departures:
            key = (packet.flow_id, int(when / frame + 1e-9))
            per_flow_frame[key] = per_flow_frame.get(key, 0) + 1
        assert all(v <= slots for v in per_flow_frame.values())


class TestJitterEddProperties:
    @given(
        packets=st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=2.0),  # arrival
                st.floats(min_value=0.0, max_value=0.5),  # carried offset
            ),
            min_size=1,
            max_size=20,
        ),
        target=st.floats(min_value=0.01, max_value=0.5),
    )
    @settings(max_examples=50, deadline=None)
    def test_hold_and_stamp_invariants(self, packets, target):
        """No packet departs before arrival + its hold, and the stamped
        ahead time is within [0, target].  Arrivals and dequeue polls are
        interleaved in time order, as a port would drive them."""
        sim = Simulator()
        sched = JitterEddScheduler(sim, default_target=target)
        pending = sorted(packets)
        earliest = {}
        served = 0
        t = 0.0
        idx = 0
        while served < len(pending) and t < 100.0:
            while idx < len(pending) and pending[idx][0] <= t:
                when, offset = pending[idx]
                packet = make_packet(sequence=idx)
                packet.jitter_offset = offset
                sched.enqueue(packet, t)
                earliest[packet.packet_id] = t + offset
                idx += 1
            packet = sched.dequeue(t)
            if packet is not None:
                served += 1
                assert t >= earliest[packet.packet_id] - 1e-9
                assert 0.0 <= packet.jitter_offset <= target + 1e-9
            else:
                t += 0.01
        assert served == len(pending)

    @given(
        offsets=st.lists(
            st.floats(min_value=0.0, max_value=0.2), min_size=2, max_size=15
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_conservation(self, offsets):
        sim = Simulator()
        sched = JitterEddScheduler(sim, default_target=0.3)
        for i, offset in enumerate(offsets):
            packet = make_packet(sequence=i)
            packet.jitter_offset = offset
            sched.enqueue(packet, 0.0)
        served = drain(sched, start=0.0, step=0.01)
        assert len(served) == len(offsets)
        assert len(sched) == 0
