"""Tests for strict priority scheduling."""

import pytest

from repro.net.packet import ServiceClass
from repro.sched.fifo import FifoScheduler
from repro.sched.priority import PriorityScheduler
from tests.conftest import make_packet


class TestStrictPriority:
    def test_higher_class_always_first(self):
        sched = PriorityScheduler(num_classes=3)
        low = make_packet(priority_class=2, sequence=0)
        high = make_packet(priority_class=0, sequence=1)
        mid = make_packet(priority_class=1, sequence=2)
        for p in (low, high, mid):
            sched.enqueue(p, 0.0)
        assert sched.dequeue(0.0) is high
        assert sched.dequeue(0.0) is mid
        assert sched.dequeue(0.0) is low

    def test_fifo_within_class(self):
        sched = PriorityScheduler(num_classes=2)
        packets = [make_packet(priority_class=1, sequence=i) for i in range(4)]
        for p in packets:
            sched.enqueue(p, 0.0)
        assert [sched.dequeue(0.0).sequence for _ in range(4)] == [0, 1, 2, 3]

    def test_priority_clamped_into_range(self):
        sched = PriorityScheduler(num_classes=2)
        overflow = make_packet(priority_class=99)
        negative = make_packet(priority_class=-1)
        sched.enqueue(overflow, 0.0)
        sched.enqueue(negative, 0.0)
        assert sched.classify(overflow) == 1
        assert sched.classify(negative) == 0

    def test_custom_classifier(self):
        sched = PriorityScheduler(
            num_classes=2,
            classifier=lambda p: 0 if p.service_class.is_realtime else 1,
        )
        dg = make_packet(service_class=ServiceClass.DATAGRAM, priority_class=0)
        rt = make_packet(service_class=ServiceClass.PREDICTED, priority_class=1)
        sched.enqueue(dg, 0.0)
        sched.enqueue(rt, 0.0)
        assert sched.dequeue(0.0) is rt

    def test_len_counts_all_classes(self):
        sched = PriorityScheduler(num_classes=3)
        for c in range(3):
            sched.enqueue(make_packet(priority_class=c), 0.0)
        assert len(sched) == 3
        sched.dequeue(0.0)
        assert len(sched) == 2

    def test_queue_lengths(self):
        sched = PriorityScheduler(num_classes=2)
        sched.enqueue(make_packet(priority_class=1), 0.0)
        sched.enqueue(make_packet(priority_class=1), 0.0)
        assert sched.queue_lengths() == {0: 0, 1: 2}

    def test_empty_dequeue(self):
        assert PriorityScheduler(num_classes=1).dequeue(0.0) is None

    def test_invalid_num_classes(self):
        with pytest.raises(ValueError):
            PriorityScheduler(num_classes=0)


class TestPushOut:
    def test_high_priority_evicts_lowest(self):
        sched = PriorityScheduler(num_classes=3)
        low = make_packet(priority_class=2)
        sched.enqueue(low, 0.0)
        incoming = make_packet(priority_class=0)
        victim = sched.select_push_out(incoming)
        assert victim is low
        assert len(sched) == 0

    def test_no_eviction_of_equal_or_higher(self):
        sched = PriorityScheduler(num_classes=2)
        sched.enqueue(make_packet(priority_class=0), 0.0)
        incoming = make_packet(priority_class=0)
        assert sched.select_push_out(incoming) is None
        incoming_low = make_packet(priority_class=1)
        assert sched.select_push_out(incoming_low) is None

    def test_eviction_takes_newest_of_victim_class(self):
        sched = PriorityScheduler(num_classes=2)
        old = make_packet(priority_class=1, sequence=0)
        new = make_packet(priority_class=1, sequence=1)
        sched.enqueue(old, 0.0)
        sched.enqueue(new, 0.0)
        victim = sched.select_push_out(make_packet(priority_class=0))
        assert victim is new

    def test_sub_scheduler_factory(self):
        calls = []

        def factory():
            calls.append(1)
            return FifoScheduler()

        PriorityScheduler(num_classes=4, sub_scheduler_factory=factory)
        assert len(calls) == 4
