"""Tests for the unified CSZ scheduler (Section 7)."""

import pytest

from repro.net.packet import ServiceClass
from repro.sched.unified import PSEUDO_FLOW_0, UnifiedConfig, UnifiedScheduler
from tests.conftest import make_packet


def build(capacity=1_000_000, classes=2, **kwargs):
    return UnifiedScheduler(
        UnifiedConfig(capacity_bps=capacity, num_predicted_classes=classes, **kwargs)
    )


def guaranteed(flow="g", **kw):
    return make_packet(flow_id=flow, service_class=ServiceClass.GUARANTEED, **kw)


def predicted(priority=0, flow="p", **kw):
    return make_packet(
        flow_id=flow, service_class=ServiceClass.PREDICTED, priority_class=priority, **kw
    )


def datagram(flow="d", **kw):
    return make_packet(flow_id=flow, service_class=ServiceClass.DATAGRAM, **kw)


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            UnifiedConfig(capacity_bps=0)
        with pytest.raises(ValueError):
            UnifiedConfig(capacity_bps=1e6, num_predicted_classes=0)
        with pytest.raises(ValueError):
            UnifiedConfig(capacity_bps=1e6, min_pseudo_flow_rate_bps=0)


class TestGuaranteedFlows:
    def test_unregistered_guaranteed_refused(self):
        sched = build()
        assert not sched.enqueue(guaranteed(), 0.0)
        assert sched.refused_guaranteed == 1

    def test_install_then_accept(self):
        sched = build()
        sched.install_guaranteed_flow("g", 100_000.0)
        assert sched.enqueue(guaranteed(), 0.0)
        assert sched.dequeue(0.0) is not None

    def test_duplicate_install_rejected(self):
        sched = build()
        sched.install_guaranteed_flow("g", 100_000.0)
        with pytest.raises(ValueError):
            sched.install_guaranteed_flow("g", 100_000.0)

    def test_cannot_reserve_whole_link(self):
        sched = build(capacity=1_000_000)
        with pytest.raises(ValueError):
            sched.install_guaranteed_flow("hog", 1_000_000.0)

    def test_pseudo_flow_rate_shrinks_with_reservations(self):
        sched = build(capacity=1_000_000)
        sched.install_guaranteed_flow("g1", 300_000.0)
        sched.install_guaranteed_flow("g2", 200_000.0)
        assert sched.guaranteed_rate_sum == 500_000.0
        assert sched.vt.rate_of(PSEUDO_FLOW_0) == pytest.approx(500_000.0)

    def test_remove_restores_rate(self):
        sched = build(capacity=1_000_000)
        sched.install_guaranteed_flow("g", 400_000.0)
        sched.remove_guaranteed_flow("g")
        assert sched.vt.rate_of(PSEUDO_FLOW_0) == pytest.approx(1_000_000.0)
        assert not sched.enqueue(guaranteed(), 0.0)  # no longer installed

    def test_remove_with_queued_packets_rejected(self):
        sched = build()
        sched.install_guaranteed_flow("g", 100_000.0)
        sched.enqueue(guaranteed(), 0.0)
        with pytest.raises(RuntimeError):
            sched.remove_guaranteed_flow("g")

    def test_guaranteed_share_under_overload(self):
        """With r_g = half the link and both queues saturated, the
        guaranteed flow gets half the dequeues — isolation in action."""
        sched = build(capacity=1_000_000)
        sched.install_guaranteed_flow("g", 500_000.0)
        for i in range(50):
            sched.enqueue(guaranteed(sequence=i), 0.0)
            sched.enqueue(datagram(sequence=i), 0.0)
        first20 = [sched.dequeue(0.0) for _ in range(20)]
        g_count = sum(1 for p in first20 if p.flow_id == "g")
        assert g_count == 10


class TestFlowZeroHierarchy:
    def test_predicted_outranks_datagram(self):
        sched = build()
        d = datagram(sequence=0)
        p = predicted(priority=1, sequence=1)
        sched.enqueue(d, 0.0)
        sched.enqueue(p, 0.0)
        assert sched.dequeue(0.0) is p
        assert sched.dequeue(0.0) is d

    def test_priority_classes_ordered(self):
        sched = build(classes=3)
        low = predicted(priority=2, sequence=0)
        high = predicted(priority=0, sequence=1)
        mid = predicted(priority=1, sequence=2)
        for p in (low, high, mid):
            sched.enqueue(p, 0.0)
        out = [sched.dequeue(0.0) for _ in range(3)]
        assert [p.priority_class for p in out] == [0, 1, 2]

    def test_fifo_plus_inside_predicted_class(self):
        sched = build()
        on_time = predicted(priority=0, sequence=0)
        on_time.enqueued_at = 10.0
        unlucky = predicted(priority=0, sequence=1)
        unlucky.jitter_offset = 5.0
        unlucky.enqueued_at = 10.5
        sched.enqueue(on_time, 10.0)
        sched.enqueue(unlucky, 10.5)
        assert sched.dequeue(11.0).sequence == 1

    def test_tag_book_stays_consistent(self):
        sched = build()
        for i in range(10):
            sched.enqueue(predicted(priority=i % 2, sequence=i), 0.0)
            sched.enqueue(datagram(sequence=i), 0.0)
        seen = 0
        while len(sched):
            assert sched.dequeue(0.0) is not None
            seen += 1
        assert seen == 20
        assert len(sched._flow0_tags) == 0

    def test_datagram_fifo_order(self):
        sched = build()
        packets = [datagram(sequence=i) for i in range(5)]
        for p in packets:
            sched.enqueue(p, 0.0)
        out = [sched.dequeue(0.0) for _ in range(5)]
        assert [p.sequence for p in out] == [0, 1, 2, 3, 4]


class TestPushOut:
    def test_realtime_evicts_datagram(self):
        sched = build()
        victim_candidate = datagram()
        sched.enqueue(victim_candidate, 0.0)
        victim = sched.select_push_out(predicted(priority=0))
        assert victim is victim_candidate
        assert len(sched) == 0

    def test_datagram_cannot_push_out(self):
        sched = build()
        sched.enqueue(predicted(priority=1), 0.0)
        assert sched.select_push_out(datagram()) is None

    def test_guaranteed_packets_never_evicted(self):
        sched = build()
        sched.install_guaranteed_flow("g", 100_000.0)
        sched.enqueue(guaranteed(), 0.0)
        assert sched.select_push_out(predicted(priority=0)) is None


class TestAccounting:
    def test_len_spans_both_sides(self):
        sched = build()
        sched.install_guaranteed_flow("g", 100_000.0)
        sched.enqueue(guaranteed(), 0.0)
        sched.enqueue(predicted(), 0.0)
        sched.enqueue(datagram(), 0.0)
        assert len(sched) == 3

    def test_queue_lengths_labelled(self):
        sched = build(classes=2)
        sched.install_guaranteed_flow("g", 100_000.0)
        sched.enqueue(guaranteed(), 0.0)
        sched.enqueue(predicted(priority=1), 0.0)
        sched.enqueue(datagram(), 0.0)
        lengths = sched.queue_lengths()
        assert lengths["g"] == 1
        assert lengths["predicted[1]"] == 1
        assert lengths["datagram"] == 1

    def test_empty_dequeue(self):
        assert build().dequeue(0.0) is None
