"""Property-based tests for the unified CSZ scheduler's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import ServiceClass
from repro.sched.unified import UnifiedConfig, UnifiedScheduler
from tests.conftest import make_packet

# A random mixture: (kind, flow index, arrival gap).
kinds = st.sampled_from(["guaranteed", "high", "low", "datagram"])
mixture = st.lists(
    st.tuples(
        kinds,
        st.integers(min_value=0, max_value=2),
        st.floats(min_value=0.0, max_value=0.01),
    ),
    min_size=1,
    max_size=60,
)

GUARANTEED_FLOWS = {"g0": 100_000.0, "g1": 150_000.0, "g2": 50_000.0}


def build_scheduler():
    scheduler = UnifiedScheduler(
        UnifiedConfig(capacity_bps=1_000_000, num_predicted_classes=2)
    )
    for flow_id, rate in GUARANTEED_FLOWS.items():
        scheduler.install_guaranteed_flow(flow_id, rate)
    return scheduler


def make_mixture_packet(kind, index, seq):
    if kind == "guaranteed":
        return make_packet(
            flow_id=f"g{index}",
            service_class=ServiceClass.GUARANTEED,
            sequence=seq,
        )
    if kind == "datagram":
        return make_packet(
            flow_id=f"d{index}",
            service_class=ServiceClass.DATAGRAM,
            sequence=seq,
        )
    priority = 0 if kind == "high" else 1
    return make_packet(
        flow_id=f"p{index}-{priority}",
        service_class=ServiceClass.PREDICTED,
        priority_class=priority,
        sequence=seq,
    )


class TestUnifiedProperties:
    @given(mix=mixture)
    @settings(max_examples=80, deadline=None)
    def test_conservation(self, mix):
        """Every accepted packet comes out exactly once; len() is exact."""
        scheduler = build_scheduler()
        accepted = []
        t = 0.0
        for seq, (kind, index, gap) in enumerate(mix):
            t += gap
            packet = make_mixture_packet(kind, index, seq)
            packet.enqueued_at = t
            if scheduler.enqueue(packet, t):
                accepted.append(packet.packet_id)
        assert len(scheduler) == len(accepted)
        out = []
        while len(scheduler):
            packet = scheduler.dequeue(t)
            assert packet is not None, "work conservation violated"
            out.append(packet.packet_id)
        assert sorted(out) == sorted(accepted)
        assert scheduler.dequeue(t) is None

    @given(mix=mixture)
    @settings(max_examples=60, deadline=None)
    def test_work_conserving(self, mix):
        """Interleaved enqueue/dequeue: dequeue never returns None while
        packets are queued (the CSZ scheduler is work-conserving)."""
        scheduler = build_scheduler()
        queued = 0
        t = 0.0
        for seq, (kind, index, gap) in enumerate(mix):
            t += gap
            packet = make_mixture_packet(kind, index, seq)
            packet.enqueued_at = t
            if scheduler.enqueue(packet, t):
                queued += 1
            if seq % 3 == 0 and queued:
                assert scheduler.dequeue(t) is not None
                queued -= 1
        assert len(scheduler) == queued

    @given(mix=mixture)
    @settings(max_examples=60, deadline=None)
    def test_per_flow_fifo_for_guaranteed(self, mix):
        """Within one guaranteed flow, packets depart in arrival order
        (WFQ never reorders a single flow)."""
        scheduler = build_scheduler()
        t = 0.0
        for seq, (kind, index, gap) in enumerate(mix):
            t += gap
            packet = make_mixture_packet(kind, index, seq)
            packet.enqueued_at = t
            scheduler.enqueue(packet, t)
        last_seq = {}
        while len(scheduler):
            packet = scheduler.dequeue(t)
            if packet.service_class is ServiceClass.GUARANTEED:
                previous = last_seq.get(packet.flow_id, -1)
                assert packet.sequence > previous
                last_seq[packet.flow_id] = packet.sequence

    @given(mix=mixture)
    @settings(max_examples=60, deadline=None)
    def test_priority_order_within_flow0_drain(self, mix):
        """When the queue is drained with no further arrivals, a low-class
        predicted packet never precedes a high-class one enqueued earlier
        AND pending — i.e. within flow 0 the priority structure holds at
        each dequeue instant."""
        scheduler = build_scheduler()
        t = 0.0
        for seq, (kind, index, gap) in enumerate(mix):
            t += gap
            packet = make_mixture_packet(kind, index, seq)
            packet.enqueued_at = t
            scheduler.enqueue(packet, t)
        pending_high = sum(
            1
            for level, count in scheduler.queue_lengths().items()
            if level == "predicted[0]"
            for __ in range(count)
        )
        while len(scheduler):
            packet = scheduler.dequeue(t)
            if packet.service_class is ServiceClass.PREDICTED:
                if packet.priority_class == 0:
                    pending_high -= 1
                else:
                    assert pending_high == 0
            elif packet.service_class is ServiceClass.DATAGRAM:
                # Datagram only leaves flow 0 when no predicted remains.
                lengths = scheduler.queue_lengths()
                assert lengths.get("predicted[0]", 0) == 0
                assert lengths.get("predicted[1]", 0) == 0
