"""Tests for WFQ / packetized GPS: tags, shares, isolation, properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched.wfq import VirtualTime, WfqScheduler
from tests.conftest import make_packet


class TestVirtualTime:
    def test_idle_system_vtime_frozen(self):
        vt = VirtualTime(1000.0)
        vt.advance(10.0)
        assert vt.vtime == 0.0

    def test_single_flow_tag_chain(self):
        vt = VirtualTime(1000.0)
        vt.register("a", 1000.0)
        t1 = vt.assign_tag("a", 500, 0.0)
        t2 = vt.assign_tag("a", 500, 0.0)
        assert t1 == pytest.approx(0.5)
        assert t2 == pytest.approx(1.0)

    def test_vtime_advances_at_capacity_over_active_rates(self):
        vt = VirtualTime(1000.0)
        vt.register("a", 500.0)
        vt.register("b", 500.0)
        vt.assign_tag("a", 10_000, 0.0)  # a active with tag 20
        vt.assign_tag("b", 10_000, 0.0)  # b active with tag 20
        # Both active: dV/dt = 1000/1000 = 1.
        vt.advance(5.0)
        assert vt.vtime == pytest.approx(5.0)

    def test_vtime_speeds_up_when_flow_departs(self):
        vt = VirtualTime(1000.0)
        vt.register("a", 500.0)
        vt.register("b", 500.0)
        vt.assign_tag("a", 500, 0.0)  # finish tag 1.0
        vt.assign_tag("b", 10_000, 0.0)  # finish tag 20.0
        # While both active, slope 1; 'a' exits at V=1 (t=1); then slope
        # = 1000/500 = 2.  At t=3: V = 1 + 2*2 = 5.
        vt.advance(3.0)
        assert vt.vtime == pytest.approx(5.0)

    def test_new_arrival_tag_starts_at_vtime_after_idle(self):
        vt = VirtualTime(1000.0)
        vt.register("a", 1000.0)
        vt.assign_tag("a", 1000, 0.0)  # tag 1.0, active until V=1
        vt.advance(10.0)  # flow long gone; V stuck at its last tag
        tag = vt.assign_tag("a", 1000, 10.0)
        assert tag == pytest.approx(vt.vtime + 1.0)

    def test_rate_change_refused_while_backlogged(self):
        vt = VirtualTime(1000.0)
        vt.register("a", 100.0)
        vt.assign_tag("a", 10_000, 0.0)
        with pytest.raises(RuntimeError):
            vt.register("a", 200.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            VirtualTime(0.0)
        vt = VirtualTime(100.0)
        with pytest.raises(ValueError):
            vt.register("a", 0.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
                st.sampled_from(["a", "b", "c"]),
                st.integers(min_value=100, max_value=5000),
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=50)
    def test_vtime_monotone_and_tags_increase_per_flow(self, raw):
        events = sorted(raw)
        vt = VirtualTime(10_000.0)
        for name in "abc":
            vt.register(name, 2000.0)
        last_v = 0.0
        last_tag = {}
        for t, flow, size in events:
            tag = vt.assign_tag(flow, size, t)
            assert vt.vtime >= last_v - 1e-9
            last_v = vt.vtime
            if flow in last_tag:
                assert tag > last_tag[flow]
            assert tag >= vt.vtime - 1e-9
            last_tag[flow] = tag


class TestWfqScheduler:
    def test_unknown_flow_refused_without_auto_register(self):
        sched = WfqScheduler(1000.0)
        assert not sched.enqueue(make_packet(flow_id="x"), 0.0)
        assert sched.refused == 1

    def test_auto_register(self):
        sched = WfqScheduler(1000.0, auto_register_rate=100.0)
        assert sched.enqueue(make_packet(flow_id="x"), 0.0)
        assert sched.vt.is_registered("x")

    def test_work_conserving(self):
        sched = WfqScheduler(1000.0, rates_bps={"a": 500.0, "b": 500.0})
        sched.enqueue(make_packet(flow_id="a"), 0.0)
        sched.enqueue(make_packet(flow_id="b"), 0.0)
        assert sched.dequeue(0.0) is not None
        assert sched.dequeue(0.0) is not None
        assert sched.dequeue(0.0) is None

    def test_per_flow_order_preserved(self):
        sched = WfqScheduler(1000.0, rates_bps={"a": 500.0, "b": 500.0})
        packets = [make_packet(flow_id="a", sequence=i) for i in range(5)]
        for p in packets:
            sched.enqueue(p, 0.0)
        out = []
        while len(sched):
            out.append(sched.dequeue(0.0))
        assert [p.sequence for p in out] == [0, 1, 2, 3, 4]

    def test_interleaves_backlogged_equal_weight_flows(self):
        sched = WfqScheduler(1000.0, rates_bps={"a": 500.0, "b": 500.0})
        for i in range(4):
            sched.enqueue(make_packet(flow_id="a", size_bits=1000, sequence=i), 0.0)
        for i in range(4):
            sched.enqueue(make_packet(flow_id="b", size_bits=1000, sequence=i), 0.0)
        order = [sched.dequeue(0.0).flow_id for _ in range(8)]
        # Equal rates, equal sizes: must alternate (after the first pair in
        # either order).
        assert order.count("a") == 4
        for i in range(0, 8, 2):
            assert {order[i], order[i + 1]} == {"a", "b"}

    def test_weighted_shares_two_to_one(self):
        sched = WfqScheduler(3000.0, rates_bps={"heavy": 2000.0, "light": 1000.0})
        for i in range(30):
            sched.enqueue(make_packet(flow_id="heavy", size_bits=1000), 0.0)
            sched.enqueue(make_packet(flow_id="light", size_bits=1000), 0.0)
        first12 = [sched.dequeue(0.0).flow_id for _ in range(12)]
        assert first12.count("heavy") == 8
        assert first12.count("light") == 4

    def test_isolation_burst_does_not_displace_steady_flow(self):
        """A huge burst on one flow cannot push the other flow's single
        packet to the back (contrast with FIFO)."""
        sched = WfqScheduler(1000.0, rates_bps={"bursty": 500.0, "steady": 500.0})
        for i in range(50):
            sched.enqueue(make_packet(flow_id="bursty", size_bits=1000), 0.0)
        sched.enqueue(make_packet(flow_id="steady", size_bits=1000), 0.0)
        # The steady packet's tag is V+2 = 2; bursty packets have tags 2,
        # 4, 6, ... so steady departs first or second.
        first_two = [sched.dequeue(0.0).flow_id for _ in range(2)]
        assert "steady" in first_two

    def test_register_flow_after_construction(self):
        sched = WfqScheduler(1000.0)
        sched.register_flow("late", 100.0)
        assert sched.enqueue(make_packet(flow_id="late"), 0.0)
