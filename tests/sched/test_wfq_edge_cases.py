"""Edge-case tests for VirtualTime / WfqScheduler not covered elsewhere."""

import pytest

from repro.net.packet import ServiceClass
from repro.sched.unified import UnifiedConfig, UnifiedScheduler
from repro.sched.wfq import VirtualTime, WfqScheduler
from tests.conftest import make_packet


class TestVirtualTimeRateChanges:
    def test_reregister_while_idle_allowed(self):
        vt = VirtualTime(1_000_000)
        vt.register("a", 100_000)
        vt.register("a", 200_000)  # idle: renegotiation is fine
        assert vt.rate_of("a") == 200_000

    def test_reregister_while_backlogged_refused(self):
        vt = VirtualTime(1_000_000)
        vt.register("a", 100_000)
        vt.assign_tag("a", 1000, now=0.0)  # now GPS-active
        with pytest.raises(RuntimeError):
            vt.register("a", 200_000)

    def test_backlog_clears_then_reregister_ok(self):
        vt = VirtualTime(1_000_000)
        vt.register("a", 100_000)
        vt.assign_tag("a", 1000, now=0.0)
        # Advance far enough for the flow's final tag to pass.
        vt.advance(1.0)
        vt.register("a", 200_000)
        assert vt.rate_of("a") == 200_000

    def test_rejects_nonpositive_rate(self):
        vt = VirtualTime(1_000_000)
        with pytest.raises(ValueError):
            vt.register("a", 0.0)

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            VirtualTime(0.0)

    def test_registered_rate_sum(self):
        vt = VirtualTime(1_000_000)
        vt.register("a", 100_000)
        vt.register("b", 300_000)
        assert vt.registered_rate_sum() == 400_000


class TestVirtualTimeDynamics:
    def test_vtime_grows_faster_with_fewer_active_flows(self):
        """V's slope is C / (sum of active rates): fewer active flows
        means the active ones get more than their nominal share."""
        vt = VirtualTime(1_000_000)
        vt.register("a", 500_000)
        vt.register("b", 500_000)
        vt.assign_tag("a", 100_000, now=0.0)  # only a is active
        vt.advance(0.1)
        only_a = vt.vtime
        vt2 = VirtualTime(1_000_000)
        vt2.register("a", 500_000)
        vt2.register("b", 500_000)
        vt2.assign_tag("a", 100_000, now=0.0)
        vt2.assign_tag("b", 100_000, now=0.0)  # both active
        vt2.advance(0.1)
        assert only_a > vt2.vtime

    def test_idle_system_vtime_static(self):
        vt = VirtualTime(1_000_000)
        vt.register("a", 500_000)
        vt.advance(10.0)
        assert vt.vtime == 0.0


class TestWfqSchedulerEdges:
    def test_unknown_flow_refused_without_auto(self):
        sched = WfqScheduler(1_000_000)
        assert not sched.enqueue(make_packet(flow_id="ghost"), 0.0)

    def test_empty_dequeue(self):
        sched = WfqScheduler(1_000_000)
        assert sched.dequeue(0.0) is None

    def test_auto_register(self):
        sched = WfqScheduler(1_000_000, auto_register_rate=100_000)
        assert sched.enqueue(make_packet(flow_id="new"), 0.0)
        assert sched.dequeue(0.0).flow_id == "new"


class TestUnifiedReconfiguration:
    def test_remove_missing_flow_is_noop(self):
        sched = UnifiedScheduler(UnifiedConfig(capacity_bps=1_000_000))
        sched.remove_guaranteed_flow("never-there")

    def test_pseudo_flow_floor_enforced(self):
        sched = UnifiedScheduler(
            UnifiedConfig(capacity_bps=1_000_000, min_pseudo_flow_rate_bps=100_000)
        )
        sched.install_guaranteed_flow("a", 800_000)
        with pytest.raises(ValueError):
            sched.install_guaranteed_flow("b", 150_000)

    def test_refused_guaranteed_counted(self):
        sched = UnifiedScheduler(UnifiedConfig(capacity_bps=1_000_000))
        packet = make_packet(
            flow_id="no-reservation", service_class=ServiceClass.GUARANTEED
        )
        assert not sched.enqueue(packet, 0.0)
        assert sched.refused_guaranteed == 1
