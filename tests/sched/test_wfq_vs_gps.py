"""Cross-validation of packetized WFQ against the GPS fluid model.

Parekh's single-node theorem (the paper's Section 4 foundation): for the
same arrivals, clock rates, and link capacity, every packet's departure
under PGPS/WFQ finishes no later than its GPS fluid departure plus one
maximum-packet transmission time,

    F_packet <= F_fluid + L_max / C.

Driving both independent implementations (the event-driven packet
scheduler and the threshold-based fluid solver) with identical random
inputs and checking the theorem couples them together: a bug in either
breaks the inequality (or the paired work-conservation checks).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.packet import Packet, ServiceClass
from repro.sched.gps import FluidArrival, GpsFluidModel
from repro.sched.wfq import WfqScheduler

CAPACITY = 1_000_000.0
RATES = {"a": 400_000.0, "b": 350_000.0, "c": 250_000.0}  # sums to C
L_MAX = 2000.0

arrival_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=0.05),  # inter-arrival gap
        st.sampled_from(sorted(RATES)),
        st.integers(min_value=500, max_value=int(L_MAX)),
    ),
    min_size=1,
    max_size=40,
)


def simulate_wfq(arrivals):
    """Drive WfqScheduler through an explicit link-service loop.

    Returns departure (last-bit) times aligned with ``arrivals``.
    """
    scheduler = WfqScheduler(CAPACITY)
    for flow, rate in RATES.items():
        scheduler.register_flow(flow, rate)
    packets = []
    for index, (when, flow, size) in enumerate(arrivals):
        packet = Packet(
            flow_id=flow,
            size_bits=size,
            created_at=when,
            source="s",
            destination="d",
            service_class=ServiceClass.GUARANTEED,
            sequence=index,
        )
        packets.append(packet)
    departures = {}
    now = 0.0
    i = 0
    n = len(arrivals)
    while i < n or len(scheduler):
        if len(scheduler) == 0:
            now = max(now, arrivals[i][0])
        while i < n and arrivals[i][0] <= now + 1e-15:
            packet = packets[i]
            packet.enqueued_at = arrivals[i][0]
            assert scheduler.enqueue(packet, arrivals[i][0])
            i += 1
        packet = scheduler.dequeue(now)
        if packet is None:
            now = arrivals[i][0]
            continue
        finish = now + packet.size_bits / CAPACITY
        departures[packet.sequence] = finish
        now = finish
    return [departures[k] for k in range(n)]


def simulate_gps(arrivals):
    model = GpsFluidModel(CAPACITY, RATES)
    fluid = [
        FluidArrival(time=when, flow_id=flow, size_bits=float(size))
        for when, flow, size in arrivals
    ]
    return [record.departure_time for record in model.run(fluid)]


def normalize(raw):
    """Turn (gap, flow, size) samples into time-ordered arrivals."""
    t = 0.0
    arrivals = []
    for gap, flow, size in raw:
        t += gap
        arrivals.append((t, flow, size))
    return arrivals


class TestParekhLagTheorem:
    @given(raw=arrival_lists)
    @settings(max_examples=60, deadline=None)
    def test_wfq_within_one_packet_of_gps(self, raw):
        arrivals = normalize(raw)
        wfq = simulate_wfq(arrivals)
        gps = simulate_gps(arrivals)
        slack = L_MAX / CAPACITY
        for index, (w, g) in enumerate(zip(wfq, gps)):
            assert w <= g + slack + 1e-9, (
                f"packet {index}: WFQ finished {w:.6f}, "
                f"GPS {g:.6f}, allowed lag {slack:.6f}"
            )

    @given(raw=arrival_lists)
    @settings(max_examples=40, deadline=None)
    def test_both_models_conserve_work(self, raw):
        """Busy periods coincide: the last departure differs by at most the
        one-packet lag (both systems transmit the same total bits over the
        same busy intervals)."""
        arrivals = normalize(raw)
        wfq_last = max(simulate_wfq(arrivals))
        gps_last = max(simulate_gps(arrivals))
        assert math.isclose(
            wfq_last, gps_last, abs_tol=L_MAX / CAPACITY + 1e-9
        )

    @given(raw=arrival_lists)
    @settings(max_examples=40, deadline=None)
    def test_wfq_departures_after_arrivals(self, raw):
        arrivals = normalize(raw)
        for (when, __, size), finish in zip(arrivals, simulate_wfq(arrivals)):
            assert finish >= when + size / CAPACITY - 1e-9
