"""Backend selection: factory routing, backend_info, pure-Python forcing.

The ``Simulator`` factory picks the compiled core for heap-queue engines
when ``repro.sim._engine_c`` is importable, and the authoritative
``PySimulator`` otherwise.  ``REPRO_PURE_PYTHON=1`` (import-time) forces
pure Python; ``REPRO_ENGINE_QUEUE`` (construction-time) picks the default
event store.  The compiled core must mirror the Python engine's public
surface — including validation errors and handle semantics.
"""

import math
import os
import pathlib
import subprocess
import sys

import pytest

from repro.sim import (
    EventHandle,
    PySimulator,
    SimulationError,
    Simulator,
    backend_info,
    resolve_queue_backend,
)

INFO = backend_info()


class TestBackendInfo:
    def test_report_shape(self):
        assert INFO["engine"] in ("compiled-c", "pure-python")
        assert isinstance(INFO["compiled_available"], bool)
        assert INFO["default_queue"] in ("heap", "calendar")
        assert INFO["queue_backends"] == ["heap", "calendar"]
        assert INFO["pure_python_forced"] in (True, False)

    def test_engine_matches_availability(self):
        assert INFO["engine"] == (
            "compiled-c" if INFO["compiled_available"] else "pure-python"
        )

    def test_calendar_always_pure_python(self):
        sim = Simulator(queue="calendar")
        assert isinstance(sim, PySimulator)
        assert sim.queue_backend == "calendar"

    def test_resolve_queue_backend(self, monkeypatch):
        assert resolve_queue_backend("heap") == "heap"
        assert resolve_queue_backend("calendar") == "calendar"
        monkeypatch.setenv("REPRO_ENGINE_QUEUE", "calendar")
        assert resolve_queue_backend(None) == "calendar"
        assert resolve_queue_backend("auto") == "calendar"
        monkeypatch.delenv("REPRO_ENGINE_QUEUE")
        assert resolve_queue_backend(None) == "heap"
        with pytest.raises(ValueError, match="unknown queue backend"):
            resolve_queue_backend("btree")

    def test_pure_python_env_forces_py_engine(self):
        """In a fresh process with REPRO_PURE_PYTHON=1, the factory must
        return PySimulator even when the compiled core is built."""
        code = (
            "from repro.sim import Simulator, PySimulator, backend_info\n"
            "info = backend_info()\n"
            "assert info['engine'] == 'pure-python', info\n"
            "assert info['pure_python_forced'] is True, info\n"
            "assert isinstance(Simulator(), PySimulator)\n"
            "print('ok')\n"
        )
        repo_root = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo_root / "src")
        env["REPRO_PURE_PYTHON"] = "1"
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(repo_root),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "ok"


@pytest.mark.skipif(
    not INFO["compiled_available"], reason="compiled core not built"
)
class TestCompiledCoreContract:
    """The compiled engine's public surface mirrors PySimulator exactly."""

    def make(self):
        sim = Simulator()
        assert type(sim).__name__ == "CSimulator"
        return sim

    def test_validation_errors_are_simulation_errors(self):
        sim = self.make()
        with pytest.raises(SimulationError, match="finite and non-negative"):
            sim.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError, match="finite and non-negative"):
            sim.schedule(math.nan, lambda: None)
        with pytest.raises(SimulationError, match="finite and non-negative"):
            sim.schedule(math.inf, lambda: None)
        sim2 = Simulator(start_time=10.0)
        with pytest.raises(SimulationError, match="cannot schedule at"):
            sim2.schedule_at(9.0, lambda: None)

    def test_handles_are_canonical_event_handles(self):
        sim = self.make()
        handle = sim.schedule_handle(1.0, lambda: None)
        assert isinstance(handle, EventHandle)
        assert handle.active
        assert handle.time == 1.0
        handle.cancel()
        assert not handle.active
        assert sim.cancelled_pending == 1

    def test_run_until_and_clock_parking(self):
        sim = self.make()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1.0))
        sim.schedule(3.0, lambda: fired.append(3.0))
        assert sim.run(until=2.0) == 2.0
        assert fired == [1.0]
        assert sim.now == 2.0
        assert sim.run(until=3.0) == 3.0  # event exactly at `until` fires
        assert fired == [1.0, 3.0]

    def test_run_is_not_reentrant(self):
        sim = self.make()
        failure = []

        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                failure.append(str(exc))

        sim.schedule(0.0, reenter)
        sim.run_until_idle()
        assert failure == ["run() is not reentrant"]

    def test_horizon_visible_during_run(self):
        sim = self.make()
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.horizon))
        sim.run(until=5.0)
        assert seen == [5.0]
        assert sim.horizon == math.inf

    def test_peek_next_time_and_advance_to(self):
        sim = self.make()
        assert sim.peek_next_time() == math.inf
        sim.schedule(2.0, lambda: None)
        dead = sim.schedule_handle(1.0, lambda: None)
        dead.cancel()
        assert sim.peek_next_time() == 2.0  # dead head popped on the way
        before = sim.events_processed
        sim.advance_to(1.5)
        assert sim.now == 1.5
        # The jump stands in for exactly one elided event.
        assert sim.events_processed == before + 1

    def test_exception_propagates_and_engine_reusable(self):
        sim = self.make()

        def boom():
            raise ValueError("boom")

        sim.schedule(1.0, boom)
        sim.schedule(2.0, lambda: None)
        with pytest.raises(ValueError, match="boom"):
            sim.run()
        assert sim.now == 1.0
        assert sim.horizon == math.inf
        sim.run_until_idle()  # reusable after the failure
        assert sim.now == 2.0

    def test_same_time_priority_and_fifo_order(self):
        sim = self.make()
        fired = []
        sim.schedule(1.0, lambda: fired.append("late"), priority=5)
        sim.schedule(1.0, lambda: fired.append("early"), priority=-5)
        sim.schedule(1.0, lambda: fired.append("mid-a"))
        sim.schedule(1.0, lambda: fired.append("mid-b"))
        sim.run_until_idle()
        assert fired == ["early", "mid-a", "mid-b", "late"]

    def test_nested_step_counts_once_each(self):
        sim = self.make()
        fired = []
        sim.schedule(2.0, lambda: fired.append("inner"))

        def outer():
            fired.append("outer")
            sim.step()

        sim.schedule(1.0, outer)
        sim.run_until_idle()
        assert fired == ["outer", "inner"]
        assert sim.events_processed == 2
