"""Calendar-queue event store: unit behaviour + randomized heap cross-check.

The calendar queue must be *ordering-identical* to the heap on the full
``(time, priority, seq)`` key — the randomized cross-check drives both
backends through the same self-scheduling, handle-cancelling event script
and requires the firing logs to match element for element.
"""

import random

import pytest

from repro.sim import CalendarQueue, PySimulator
from repro.sim.engine import backend_info


class TestCalendarQueueUnit:
    def test_push_pop_sorted(self):
        q = CalendarQueue()
        entries = [(t, 0, i, None) for i, t in enumerate([5.0, 1.0, 3.0, 2.0, 4.0])]
        for e in entries:
            q.push(e)
        popped = [q.pop()[0] for _ in range(len(entries))]
        assert popped == sorted(popped)
        assert q.pop() is None
        assert len(q) == 0

    def test_same_time_orders_by_priority_then_seq(self):
        q = CalendarQueue()
        q.push((1.0, 1, 0, "late-prio"))
        q.push((1.0, 0, 1, "first"))
        q.push((1.0, 1, 2, "after-seq"))
        assert [q.pop()[3] for _ in range(3)] == [
            "first", "late-prio", "after-seq",
        ]

    def test_push_earlier_day_after_peek_rewinds_scan(self):
        """Regression: peek advances the scan over empty days; a later
        push into an earlier day must still surface first."""
        q = CalendarQueue(width=1.0)
        q.push((100.0, 0, 0, "far"))
        assert q.peek()[3] == "far"  # scan jumped toward day 100
        q.push((2.0, 0, 1, "near"))
        assert q.pop()[3] == "near"
        assert q.pop()[3] == "far"

    def test_far_future_gap_is_bridged(self):
        """Events more than a whole year ahead are found via the direct
        search fallback, not by scanning millions of empty days."""
        q = CalendarQueue(width=0.001, nbuckets=8)
        q.push((0.0005, 0, 0, "now"))
        q.push((10_000.0, 0, 1, "next-era"))
        assert q.pop()[3] == "now"
        assert q.pop()[3] == "next-era"

    def test_resize_preserves_order(self):
        rng = random.Random(7)
        q = CalendarQueue()
        entries = [(rng.uniform(0, 50), 0, i, i) for i in range(500)]
        for e in entries:
            q.push(e)  # grows through several resizes
        out = [q.pop() for _ in range(250)]  # shrinks on the way down
        rest = [q.pop() for _ in range(250)]
        assert out + rest == sorted(entries)

    def test_interleaved_push_pop_never_reorders(self):
        rng = random.Random(42)
        q = CalendarQueue()
        seq = 0
        last = -1.0
        pending = 0
        for _ in range(2000):
            if pending and rng.random() < 0.45:
                entry = q.pop()
                assert entry[0] >= last
                last = entry[0]
                pending -= 1
            else:
                # Times at/after the last pop, clustered to force dense
                # buckets and occasional same-bucket ties.
                t = last + rng.choice([0.0, 0.001, 0.01, 1.0]) * rng.random()
                q.push((max(t, last), rng.randint(-1, 1), seq, None))
                seq += 1
                pending += 1

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            CalendarQueue(width=0.0)
        with pytest.raises(ValueError):
            CalendarQueue(nbuckets=12)  # not a power of two


def _run_script(sim_factory, script_seed: int):
    """Drive a simulator through a randomized self-scheduling script.

    Callbacks log ``(now, label)``, schedule 0-2 further events (zero
    delays included, to stress same-time FIFO), occasionally via handles
    that later get cancelled.  The script's decisions come from a seeded
    RNG, so two backends that fire in the same order draw identically —
    any ordering divergence derails the logs immediately.
    """
    sim = sim_factory()
    rng = random.Random(script_seed)
    log = []
    handles = []
    counter = [0]

    def make_action(label):
        def action():
            log.append((sim.now, label))
            for _ in range(rng.randint(0, 2)):
                counter[0] += 1
                child = f"{label}.{counter[0]}"
                delay = rng.choice([0.0, 0.0, 0.001, 0.1, 1.5]) * rng.random()
                priority = rng.randint(-1, 1)
                if len(log) < 400 or rng.random() < 0.05:
                    if rng.random() < 0.3:
                        handles.append(
                            sim.schedule_handle(
                                delay, make_action(child), priority=priority
                            )
                        )
                    else:
                        sim.schedule(delay, make_action(child), priority=priority)
            if handles and rng.random() < 0.25:
                handles.pop(rng.randrange(len(handles))).cancel()

        return action

    for i in range(20):
        sim.schedule(rng.random() * 2.0, make_action(f"root{i}"))
    sim.run(until=50.0, max_events=5000)
    return log, sim.events_processed


class TestHeapCalendarCrossCheck:
    @pytest.mark.parametrize("script_seed", [1, 2, 3, 11, 23])
    def test_backends_fire_identically(self, script_seed):
        heap_log, heap_count = _run_script(
            lambda: PySimulator(queue="heap"), script_seed
        )
        cal_log, cal_count = _run_script(
            lambda: PySimulator(queue="calendar"), script_seed
        )
        assert len(heap_log) > 100  # the script actually did something
        assert heap_log == cal_log
        assert heap_count == cal_count

    @pytest.mark.skipif(
        not backend_info()["compiled_available"],
        reason="compiled core not built",
    )
    def test_compiled_core_fires_identically(self):
        from repro.sim.engine import _COMPILED

        heap_log, heap_count = _run_script(
            lambda: PySimulator(queue="heap"), 5
        )
        c_log, c_count = _run_script(lambda: _COMPILED.CSimulator(), 5)
        assert c_log == heap_log
        assert c_count == heap_count
