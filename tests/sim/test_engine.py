"""Tests for the discrete-event engine: ordering, cancellation, guards."""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self, sim):
        fired = []
        sim.schedule(3.0, lambda: fired.append("c"))
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        sim.run_until_idle()
        assert fired == ["a", "b", "c"]

    def test_same_time_events_fire_in_scheduling_order(self, sim):
        fired = []
        for name in "abcde":
            sim.schedule(1.0, lambda n=name: fired.append(n))
        sim.run_until_idle()
        assert fired == list("abcde")

    def test_priority_breaks_same_time_ties(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("late"), priority=5)
        sim.schedule(1.0, lambda: fired.append("early"), priority=-5)
        sim.run_until_idle()
        assert fired == ["early", "late"]

    def test_clock_advances_to_event_time(self, sim):
        seen = []
        sim.schedule(2.5, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [2.5]

    def test_zero_delay_runs_at_current_time(self, sim):
        seen = []
        sim.schedule(1.0, lambda: sim.schedule(0.0, lambda: seen.append(sim.now)))
        sim.run_until_idle()
        assert seen == [1.0]

    def test_events_scheduled_during_execution_fire(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1.0, lambda: chain(n + 1))

        sim.schedule(1.0, lambda: chain(0))
        sim.run_until_idle()
        assert fired == [0, 1, 2, 3]
        assert sim.now == 4.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_infinite_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(float("inf"), lambda: None)

    def test_nan_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.schedule(float("nan"), lambda: None)

    def test_schedule_at_in_past_rejected(self, sim):
        sim.schedule(5.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        handle = sim.schedule_handle(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run_until_idle()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        handle = sim.schedule_handle(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert not handle.active

    def test_handle_reports_inactive_after_firing(self, sim):
        handle = sim.schedule_handle(1.0, lambda: None)
        assert handle.active
        sim.run_until_idle()
        assert not handle.active

    def test_cancel_mid_run(self, sim):
        fired = []
        later = sim.schedule_handle(2.0, lambda: fired.append("later"))
        sim.schedule(1.0, lambda: later.cancel())
        sim.run_until_idle()
        assert fired == []

    def test_schedule_handle_at_cancellable(self, sim):
        fired = []
        handle = sim.schedule_handle_at(2.0, lambda: fired.append(1))
        assert handle.time == 2.0
        handle.cancel()
        sim.run_until_idle()
        assert fired == []


class TestRun:
    def test_run_until_stops_the_clock_at_until(self, sim):
        sim.schedule(10.0, lambda: None)
        stopped_at = sim.run(until=5.0)
        assert stopped_at == 5.0
        assert sim.pending_events == 1

    def test_event_exactly_at_until_fires(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(1))
        sim.run(until=5.0)
        assert fired == [1]

    def test_run_with_empty_queue_advances_to_until(self, sim):
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_max_events_limits_execution(self, sim):
        fired = []
        for i in range(10):
            sim.schedule(float(i + 1), lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_step_fires_single_event(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("a"))
        sim.schedule(2.0, lambda: fired.append("b"))
        assert sim.step()
        assert fired == ["a"]
        assert sim.step()
        assert not sim.step()

    def test_run_is_not_reentrant(self, sim):
        def recurse():
            sim.run(until=10.0)

        sim.schedule(1.0, recurse)
        with pytest.raises(SimulationError):
            sim.run_until_idle()

    def test_events_processed_counter(self, sim):
        for i in range(5):
            sim.schedule(float(i), lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 5

    def test_clear_drops_pending(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.clear()
        sim.run_until_idle()
        assert fired == []

    def test_start_time(self):
        sim = Simulator(start_time=100.0)
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [101.0]

    def test_exception_in_action_propagates_and_engine_survives(self, sim):
        sim.schedule(1.0, lambda: 1 / 0)
        fired = []
        sim.schedule(2.0, lambda: fired.append(1))
        with pytest.raises(ZeroDivisionError):
            sim.run_until_idle()
        # The failing event was consumed; the loop can continue afterwards.
        sim.run_until_idle()
        assert fired == [1]
