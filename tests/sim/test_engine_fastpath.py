"""Semantics the fast-path engine rewrite must preserve.

The engine stores events as plain ``(time, priority, seq, action)`` tuples
with a boxed-cell variant for cancellable events.  These tests pin the
contract both paths share: deterministic same-time ordering (time, then
priority, then FIFO), cancel idempotence across the fire boundary,
``run(until=...)`` clock semantics, and observational equivalence of
``schedule`` and ``schedule_handle``.
"""

import pytest

from repro.sim.engine import SimulationError, Simulator


class TestSameTimeOrdering:
    def test_priority_then_fifo_across_both_paths(self, sim):
        """Interleaved schedule/schedule_handle events at one instant fire
        by priority first, then in scheduling order."""
        fired = []
        sim.schedule(1.0, lambda: fired.append("fast-p0-a"))
        sim.schedule_handle(1.0, lambda: fired.append("handle-p0-b"))
        sim.schedule(1.0, lambda: fired.append("fast-late"), priority=7)
        sim.schedule_handle(1.0, lambda: fired.append("handle-early"), priority=-7)
        sim.schedule(1.0, lambda: fired.append("fast-p0-c"))
        sim.run_until_idle()
        assert fired == [
            "handle-early",
            "fast-p0-a",
            "handle-p0-b",
            "fast-p0-c",
            "fast-late",
        ]

    def test_fifo_among_equals_is_scheduling_order(self, sim):
        fired = []
        for i in range(20):
            if i % 3 == 0:
                sim.schedule_handle(2.0, lambda i=i: fired.append(i))
            else:
                sim.schedule(2.0, lambda i=i: fired.append(i))
        sim.run_until_idle()
        assert fired == list(range(20))

    def test_step_respects_priority_and_fifo(self, sim):
        fired = []
        sim.schedule(1.0, lambda: fired.append("b"), priority=1)
        sim.schedule(1.0, lambda: fired.append("a"), priority=0)
        assert sim.step()
        assert sim.step()
        assert fired == ["a", "b"]


class TestCancelThenFire:
    def test_cancel_then_fire_time_is_silent(self, sim):
        """A cancelled event's firing time passing produces nothing, and
        later cancels stay no-ops."""
        fired = []
        handle = sim.schedule_handle(1.0, lambda: fired.append(1))
        handle.cancel()
        sim.run(until=5.0)
        assert fired == []
        assert not handle.active
        handle.cancel()  # idempotent after the time has passed
        assert not handle.active

    def test_cancel_after_fire_is_noop(self, sim):
        fired = []
        handle = sim.schedule_handle(1.0, lambda: fired.append(1))
        sim.run_until_idle()
        assert fired == [1]
        handle.cancel()
        handle.cancel()
        assert not handle.active

    def test_nested_step_inside_action_stays_counted(self, sim):
        """An action draining a same-time event via step() must not lose
        that event from events_processed when run() finishes."""
        fired = []
        sim.schedule(1.0, lambda: (fired.append("outer"), sim.step()))
        sim.schedule(1.0, lambda: fired.append("inner"))
        sim.schedule(2.0, lambda: fired.append("later"))
        sim.run_until_idle()
        assert fired == ["outer", "inner", "later"]
        assert sim.events_processed == 3

    def test_cancelled_events_do_not_count_as_processed(self, sim):
        for _ in range(5):
            sim.schedule_handle(1.0, lambda: None).cancel()
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        assert sim.events_processed == 1

    def test_cancel_inside_own_action_is_noop(self, sim):
        """An action cancelling its own (already-fired) handle is safe."""
        fired = []
        box = {}

        def action():
            fired.append(sim.now)
            box["handle"].cancel()

        box["handle"] = sim.schedule_handle(1.0, action)
        sim.run_until_idle()
        assert fired == [1.0]


class TestRunUntilClock:
    def test_clock_parks_at_until_with_pending_future_events(self, sim):
        sim.schedule(10.0, lambda: None)
        assert sim.run(until=4.0) == 4.0
        assert sim.now == 4.0
        assert sim.pending_events == 1

    def test_event_exactly_at_until_fires_and_clock_stays(self, sim):
        fired = []
        sim.schedule(5.0, lambda: fired.append(sim.now))
        assert sim.run(until=5.0) == 5.0
        assert fired == [5.0]

    def test_consecutive_runs_resume_where_stopped(self, sim):
        fired = []
        for t in (1.0, 2.0, 3.0):
            sim.schedule(t, lambda t=t: fired.append(t))
        sim.run(until=1.5)
        assert fired == [1.0]
        sim.run(until=10.0)
        assert fired == [1.0, 2.0, 3.0]
        assert sim.now == 10.0

    def test_schedule_relative_to_parked_clock(self, sim):
        """After run(until=T) parks the clock, delays are relative to T."""
        sim.run(until=7.0)
        seen = []
        sim.schedule(1.0, lambda: seen.append(sim.now))
        sim.run_until_idle()
        assert seen == [8.0]

    def test_past_and_nonfinite_times_rejected_at_the_boundary(self, sim):
        sim.run(until=3.0)
        with pytest.raises(SimulationError):
            sim.schedule_at(2.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_handle(float("nan"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_handle(float("inf"), lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_handle(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.schedule_handle_at(2.0, lambda: None)


class TestScheduleVsHandleEquivalence:
    @staticmethod
    def _workload(sim, schedule):
        """A branching cascade driven through ``schedule``; returns the
        (time, label) trace."""
        trace = []

        def tick(depth, label):
            trace.append((sim.now, label))
            if depth < 4:
                schedule(0.25, lambda: tick(depth + 1, label + "l"))
                schedule(0.5, lambda: tick(depth + 1, label + "r"), 1)
        for i in range(3):
            schedule(0.1 * i, lambda i=i: tick(0, f"c{i}"))
        sim.run_until_idle()
        return trace

    def test_identical_firing_trace(self):
        fast_sim = Simulator()
        fast = self._workload(fast_sim, fast_sim.schedule)
        handle_sim = Simulator()
        handled = self._workload(handle_sim, handle_sim.schedule_handle)
        assert fast == handled
        assert fast_sim.events_processed == handle_sim.events_processed
        assert fast_sim.now == handle_sim.now
