"""Queue hygiene: cancelled handle cells must not grow the queue unboundedly.

Regression for the lazy-deletion leak: ``EventHandle.cancel()`` leaves a
dead cell in the event store until it surfaces at the head, so a workload
that cancels and re-arms timers far more often than it fires them used to
grow the queue without bound.  The engine now counts dead cells and
compacts when they dominate; these tests pin that bound on every backend.
"""

import pytest

from repro.sim import PySimulator
from repro.sim.engine import COMPACT_MIN_CANCELLED, backend_info

BACKENDS = [
    pytest.param(lambda: PySimulator(queue="heap"), id="py-heap"),
    pytest.param(lambda: PySimulator(queue="calendar"), id="py-calendar"),
]
if backend_info()["compiled_available"]:
    from repro.sim.engine import _COMPILED

    BACKENDS.append(
        pytest.param(lambda: _COMPILED.CSimulator(), id="compiled")
    )


@pytest.mark.parametrize("make_sim", BACKENDS)
class TestCancelChurn:
    def test_sustained_cancel_reschedule_stays_bounded(self, make_sim):
        """A timer re-armed 20k times with only a handful of live events
        must keep the queue near the live count, not near 20k."""
        sim = make_sim()
        handle = sim.schedule_handle(1000.0, lambda: None)
        for _ in range(20_000):
            handle.cancel()
            handle = sim.schedule_handle(1000.0, lambda: None)
        # Lazy deletion may leave up to ~2x the compaction threshold of
        # dead cells plus the live entry; 20k churns must not accumulate.
        assert sim.pending_events <= 2 * COMPACT_MIN_CANCELLED + 1
        assert sim.cancelled_pending <= 2 * COMPACT_MIN_CANCELLED

    def test_compaction_preserves_live_events(self, make_sim):
        """Compaction drops only dead cells: every live event still fires,
        in order, with the right count."""
        sim = make_sim()
        fired = []
        live = []
        for i in range(50):
            live.append(
                sim.schedule_handle(float(i + 1), lambda i=i: fired.append(i))
            )
        doomed = [
            sim.schedule_handle(2000.0, lambda: fired.append("dead"))
            for _ in range(3 * COMPACT_MIN_CANCELLED)
        ]
        for handle in doomed:
            handle.cancel()  # crosses the threshold -> compacts (twice)
        # Lazy deletion legitimately leaves a sub-threshold residue of
        # dead cells; everything above it must have been compacted away.
        assert sim.cancelled_pending < COMPACT_MIN_CANCELLED
        assert sim.pending_events == 50 + sim.cancelled_pending
        sim.run_until_idle()
        assert fired == list(range(50))
        assert sim.events_processed == 50

    def test_explicit_compact_is_idempotent(self, make_sim):
        sim = make_sim()
        handles = [
            sim.schedule_handle(5.0, lambda: None) for _ in range(10)
        ]
        for handle in handles[:4]:
            handle.cancel()
        sim.compact()
        assert sim.pending_events == 6
        sim.compact()
        assert sim.pending_events == 6
        assert sim.cancelled_pending == 0

    def test_cancel_after_compact_does_not_double_count(self, make_sim):
        """Cancelling a handle whose cell was already dropped by a compact
        must not skew the dead-cell counter negative or re-compact."""
        sim = make_sim()
        a = sim.schedule_handle(1.0, lambda: None)
        b = sim.schedule_handle(2.0, lambda: None)
        a.cancel()
        sim.compact()
        a.cancel()  # idempotent: the cell is already None
        assert sim.cancelled_pending == 0
        assert sim.pending_events == 1
        assert b.active
