"""Tests for seeded random streams and the Appendix distributions."""

import pytest

from repro.sim.randomness import RandomStreams


class TestStreams:
    def test_same_seed_same_stream_is_deterministic(self):
        a = RandomStreams(seed=7).stream("x")
        b = RandomStreams(seed=7).stream("x")
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    def test_different_names_give_different_sequences(self):
        streams = RandomStreams(seed=7)
        a = streams.stream("x")
        b = streams.stream("y")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_different_seeds_give_different_sequences(self):
        a = RandomStreams(seed=1).stream("x")
        b = RandomStreams(seed=2).stream("x")
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_stream_is_cached(self):
        streams = RandomStreams(seed=1)
        assert streams.stream("x") is streams.stream("x")

    def test_creation_order_does_not_change_draws(self):
        one = RandomStreams(seed=3)
        one.stream("a")
        x1 = one.stream("b").random()
        two = RandomStreams(seed=3)
        two.stream("z")  # different first stream
        x2 = two.stream("b").random()
        assert x1 == x2

    def test_contains(self):
        streams = RandomStreams(seed=1)
        assert "x" not in streams
        streams.stream("x")
        assert "x" in streams


class TestGeometric:
    def test_mean_is_close(self):
        rng = RandomStreams(seed=11).stream("g")
        n = 20000
        mean = sum(rng.geometric(5.0) for _ in range(n)) / n
        assert mean == pytest.approx(5.0, rel=0.05)

    def test_support_starts_at_one(self):
        rng = RandomStreams(seed=11).stream("g")
        assert all(rng.geometric(1.5) >= 1 for _ in range(1000))

    def test_mean_one_is_degenerate(self):
        rng = RandomStreams(seed=11).stream("g")
        assert all(rng.geometric(1.0) == 1 for _ in range(100))

    def test_mean_below_one_rejected(self):
        rng = RandomStreams(seed=11).stream("g")
        with pytest.raises(ValueError):
            rng.geometric(0.5)


class TestExponential:
    def test_mean_is_close(self):
        rng = RandomStreams(seed=13).stream("e")
        n = 20000
        mean = sum(rng.exponential(0.25) for _ in range(n)) / n
        assert mean == pytest.approx(0.25, rel=0.05)

    def test_nonpositive_mean_rejected(self):
        rng = RandomStreams(seed=13).stream("e")
        with pytest.raises(ValueError):
            rng.exponential(0.0)

    def test_values_positive(self):
        rng = RandomStreams(seed=13).stream("e")
        assert all(rng.exponential(1.0) > 0 for _ in range(1000))
