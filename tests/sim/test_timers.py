"""Tests for PeriodicTimer."""

import pytest

from repro.sim.timers import PeriodicTimer


class TestPeriodicTimer:
    def test_fires_at_fixed_interval(self, sim):
        times = []
        PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        sim.run(until=5.5)
        assert times == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_start_offset(self, sim):
        times = []
        PeriodicTimer(sim, 1.0, lambda: times.append(sim.now), start_offset=0.25)
        sim.run(until=3.0)
        assert times == [0.25, 1.25, 2.25]

    def test_stop_halts_firing(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: times.append(sim.now))
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert times == [1.0, 2.0]
        assert not timer.running

    def test_stop_from_inside_action(self, sim):
        times = []
        timer = PeriodicTimer(sim, 1.0, lambda: (times.append(sim.now), timer.stop()))
        sim.run(until=10.0)
        assert times == [1.0]

    def test_stop_is_idempotent(self, sim):
        timer = PeriodicTimer(sim, 1.0, lambda: None)
        timer.stop()
        timer.stop()
        sim.run(until=5.0)
        assert not timer.running

    def test_nonpositive_interval_rejected(self, sim):
        with pytest.raises(ValueError):
            PeriodicTimer(sim, 0.0, lambda: None)
