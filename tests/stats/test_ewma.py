"""Tests for the EWMA estimator."""

import pytest

from repro.stats.ewma import Ewma


class TestEwma:
    def test_first_sample_initializes(self):
        ewma = Ewma(gain=0.1)
        ewma.add(10.0)
        assert ewma.value == 10.0

    def test_uninitialized_value_is_zero(self):
        assert Ewma().value == 0.0
        assert not Ewma().initialized

    def test_update_rule(self):
        ewma = Ewma(gain=0.5)
        ewma.add(10.0)
        ewma.add(20.0)
        assert ewma.value == pytest.approx(15.0)
        ewma.add(15.0)
        assert ewma.value == pytest.approx(15.0)

    def test_converges_to_constant_input(self):
        ewma = Ewma(gain=0.2)
        ewma.add(100.0)
        for _ in range(200):
            ewma.add(3.0)
        assert ewma.value == pytest.approx(3.0, abs=1e-6)

    def test_gain_bounds(self):
        with pytest.raises(ValueError):
            Ewma(gain=0.0)
        with pytest.raises(ValueError):
            Ewma(gain=1.5)
        Ewma(gain=1.0)  # gain 1 = "last value" is legal

    def test_gain_one_tracks_last_sample(self):
        ewma = Ewma(gain=1.0)
        for x in [5.0, 7.0, 2.0]:
            ewma.add(x)
        assert ewma.value == 2.0

    def test_reset(self):
        ewma = Ewma(gain=0.3)
        ewma.add(4.0)
        ewma.reset()
        assert not ewma.initialized
        assert ewma.count == 0
