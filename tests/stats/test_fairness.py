"""Tests for fairness metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats.fairness import jain_index, max_min_ratio


class TestJainIndex:
    def test_equal_allocations_are_perfectly_fair(self):
        assert jain_index([3.0, 3.0, 3.0, 3.0]) == pytest.approx(1.0)

    def test_single_hog_is_minimally_fair(self):
        n = 5
        assert jain_index([1.0, 0.0, 0.0, 0.0, 0.0]) == pytest.approx(1.0 / n)

    def test_known_value(self):
        # J([1, 2, 3]) = 36 / (3 * 14) = 6/7.
        assert jain_index([1.0, 2.0, 3.0]) == pytest.approx(6.0 / 7.0)

    def test_all_zero_is_fair(self):
        assert jain_index([0.0, 0.0]) == 1.0

    def test_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            jain_index([])
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])

    @given(
        values=st.lists(
            st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=20
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_bounded_between_1_over_n_and_1(self, values):
        index = jain_index(values)
        assert 1.0 / len(values) - 1e-9 <= index <= 1.0 + 1e-9

    @given(
        values=st.lists(
            st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=20
        ),
        scale=st.floats(min_value=0.01, max_value=100.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_scale_invariant(self, values, scale):
        assert jain_index([v * scale for v in values]) == pytest.approx(
            jain_index(values), rel=1e-6
        )


class TestMaxMinRatio:
    def test_equal_is_one(self):
        assert max_min_ratio([2.0, 2.0]) == pytest.approx(1.0)

    def test_known_value(self):
        assert max_min_ratio([1.0, 4.0]) == pytest.approx(4.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            max_min_ratio([1.0, 0.0])
        with pytest.raises(ValueError):
            max_min_ratio([])
