"""Tests for the fixed-bin histogram."""

import pytest

from repro.stats.histogram import Histogram


class TestHistogram:
    def test_basic_binning(self):
        hist = Histogram(0.0, 10.0, 10)
        for x in [0.5, 1.5, 1.6, 9.99]:
            hist.add(x)
        counts = hist.counts()
        assert counts[0] == 1
        assert counts[1] == 2
        assert counts[9] == 1
        assert hist.count == 4

    def test_underflow_overflow(self):
        hist = Histogram(0.0, 1.0, 4)
        hist.add(-0.1)
        hist.add(1.0)  # hi edge is exclusive
        hist.add(5.0)
        assert hist.underflow == 1
        assert hist.overflow == 2
        assert sum(hist.counts()) == 0

    def test_bin_edges(self):
        hist = Histogram(0.0, 1.0, 4)
        assert hist.bin_edges() == pytest.approx([0.0, 0.25, 0.5, 0.75, 1.0])

    def test_nonzero_bins(self):
        hist = Histogram(0.0, 4.0, 4)
        hist.add(0.5)
        hist.add(2.5)
        hist.add(2.6)
        nz = hist.nonzero_bins()
        assert len(nz) == 2
        assert nz[0][2] == 1
        assert nz[1][2] == 2

    def test_cdf(self):
        hist = Histogram(0.0, 10.0, 10)
        for x in range(10):
            hist.add(x + 0.5)
        assert hist.cdf_at(5.0) == pytest.approx(0.5)
        assert hist.cdf_at(10.0) == pytest.approx(1.0)
        assert hist.cdf_at(-1.0) == 0.0

    def test_cdf_empty(self):
        assert Histogram(0.0, 1.0, 2).cdf_at(0.5) == 0.0

    def test_ascii_render(self):
        hist = Histogram(0.0, 2.0, 2)
        hist.add(0.5)
        art = hist.ascii(width=10)
        assert "#" in art

    def test_ascii_empty(self):
        assert "empty" in Histogram(0.0, 1.0, 2).ascii()

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, 0)
