"""Tests for percentile machinery, validated against numpy."""

import random

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.percentile import PercentileTracker, exact_percentile

finite_floats = st.floats(
    min_value=-1e9, max_value=1e9, allow_nan=False, allow_infinity=False
)


class TestExactPercentile:
    @given(
        st.lists(finite_floats, min_size=1, max_size=300),
        st.floats(min_value=0.0, max_value=100.0),
    )
    def test_matches_numpy_linear(self, values, pct):
        data = sorted(values)
        ours = exact_percentile(data, pct)
        theirs = float(np.percentile(data, pct, method="linear"))
        assert ours == pytest.approx(theirs, rel=1e-9, abs=1e-6)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            exact_percentile([], 50.0)

    def test_out_of_range_pct_rejected(self):
        with pytest.raises(ValueError):
            exact_percentile([1.0], 101.0)

    def test_single_value(self):
        assert exact_percentile([42.0], 99.9) == 42.0


class TestPercentileTracker:
    def test_median_of_known_data(self):
        tracker = PercentileTracker()
        for x in [1.0, 2.0, 3.0, 4.0, 5.0]:
            tracker.add(x)
        assert tracker.percentile(50) == 3.0
        assert tracker.min == 1.0
        assert tracker.max == 5.0

    def test_quantiles_batch(self):
        tracker = PercentileTracker()
        for x in range(101):
            tracker.add(float(x))
        q = tracker.quantiles([0, 50, 100])
        assert q == [0.0, 50.0, 100.0]

    def test_fraction_above(self):
        tracker = PercentileTracker()
        for x in range(10):
            tracker.add(float(x))
        assert tracker.fraction_above(4.0) == pytest.approx(0.5)
        assert tracker.fraction_above(100.0) == 0.0
        assert tracker.fraction_above(-1.0) == 1.0

    def test_fraction_above_empty(self):
        assert PercentileTracker().fraction_above(0.0) == 0.0

    def test_interleaved_add_and_query(self):
        tracker = PercentileTracker()
        tracker.add(5.0)
        assert tracker.percentile(50) == 5.0
        tracker.add(1.0)
        tracker.add(9.0)
        assert tracker.percentile(50) == 5.0

    def test_reservoir_requires_rng(self):
        with pytest.raises(ValueError):
            PercentileTracker(reservoir_size=10)

    def test_reservoir_caps_memory(self):
        tracker = PercentileTracker(reservoir_size=100, rng=random.Random(1))
        for x in range(10_000):
            tracker.add(float(x))
        assert len(tracker) == 100
        assert tracker.count == 10_000
        # The estimate should land in the right region.
        assert tracker.percentile(50) == pytest.approx(5000, rel=0.25)

    def test_count_vs_len_without_reservoir(self):
        tracker = PercentileTracker()
        for x in range(50):
            tracker.add(float(x))
        assert tracker.count == len(tracker) == 50
