"""Tests for SummaryStats, including a property-based check vs numpy."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.summary import SummaryStats

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestBasics:
    def test_empty(self):
        stats = SummaryStats()
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert len(stats) == 0

    def test_single_sample(self):
        stats = SummaryStats()
        stats.add(3.5)
        assert stats.mean == 3.5
        assert stats.min == 3.5
        assert stats.max == 3.5
        assert stats.variance == 0.0

    def test_known_values(self):
        stats = SummaryStats()
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
            stats.add(x)
        assert stats.mean == pytest.approx(5.0)
        assert stats.variance == pytest.approx(4.0)
        assert stats.stdev == pytest.approx(2.0)
        assert stats.total == pytest.approx(40.0)

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_matches_numpy(self, values):
        stats = SummaryStats()
        for v in values:
            stats.add(v)
        assert stats.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-9)
        assert stats.variance == pytest.approx(np.var(values), rel=1e-6, abs=1e-6)
        assert stats.min == min(values)
        assert stats.max == max(values)

    @given(st.lists(finite_floats, min_size=2, max_size=100))
    def test_sample_variance_matches_numpy(self, values):
        stats = SummaryStats()
        for v in values:
            stats.add(v)
        assert stats.sample_variance == pytest.approx(
            np.var(values, ddof=1), rel=1e-6, abs=1e-6
        )


class TestMerge:
    @given(
        st.lists(finite_floats, min_size=0, max_size=50),
        st.lists(finite_floats, min_size=0, max_size=50),
    )
    def test_merge_equals_concatenation(self, left, right):
        merged = SummaryStats()
        for v in left:
            merged.add(v)
        other = SummaryStats()
        for v in right:
            other.add(v)
        merged.merge(other)

        direct = SummaryStats()
        for v in left + right:
            direct.add(v)
        assert merged.count == direct.count
        if direct.count:
            assert merged.mean == pytest.approx(direct.mean, rel=1e-9, abs=1e-9)
            assert merged.variance == pytest.approx(
                direct.variance, rel=1e-6, abs=1e-6
            )
            assert merged.min == direct.min
            assert merged.max == direct.max
