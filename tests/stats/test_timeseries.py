"""Tests for time-weighted values and rate meters."""

import pytest

from repro.stats.timeseries import RateMeter, TimeWeightedValue


class TestTimeWeightedValue:
    def test_constant_value(self):
        tw = TimeWeightedValue(start_time=0.0, initial=2.0)
        assert tw.average(10.0) == pytest.approx(2.0)

    def test_piecewise_average(self):
        tw = TimeWeightedValue()
        tw.update(0.0, 1.0)  # value 1 over [0, 4)
        tw.update(4.0, 3.0)  # value 3 over [4, 8)
        assert tw.average(8.0) == pytest.approx(2.0)

    def test_busy_fraction_pattern(self):
        # Link busy accounting: on at 0, off at 1, on at 3, off at 4.
        tw = TimeWeightedValue()
        tw.update(0.0, 1.0)
        tw.update(1.0, 0.0)
        tw.update(3.0, 1.0)
        tw.update(4.0, 0.0)
        assert tw.average(4.0) == pytest.approx(0.5)

    def test_integral(self):
        tw = TimeWeightedValue()
        tw.update(0.0, 5.0)
        assert tw.integral(2.0) == pytest.approx(10.0)

    def test_max_tracked(self):
        tw = TimeWeightedValue()
        tw.update(0.0, 1.0)
        tw.update(1.0, 7.0)
        tw.update(2.0, 3.0)
        assert tw.max == 7.0

    def test_backwards_time_rejected(self):
        tw = TimeWeightedValue()
        tw.update(5.0, 1.0)
        with pytest.raises(ValueError):
            tw.update(4.0, 2.0)

    def test_reset_restarts_window(self):
        tw = TimeWeightedValue()
        tw.update(0.0, 10.0)
        tw.update(5.0, 0.0)
        tw.reset(5.0)
        assert tw.average(10.0) == pytest.approx(0.0)

    def test_zero_elapsed_average(self):
        tw = TimeWeightedValue()
        assert tw.average(0.0) == 0.0


class TestRateMeter:
    def test_cumulative_rate(self):
        meter = RateMeter(window=1.0)
        for t in range(10):
            meter.add(float(t), 100.0)
        assert meter.cumulative_rate(10.0) == pytest.approx(100.0)

    def test_windowed_rate_counts_recent_only(self):
        meter = RateMeter(window=2.0)
        meter.add(0.0, 1000.0)
        meter.add(9.0, 500.0)
        meter.add(10.0, 500.0)
        # Window [8, 10]: 1000 units over 2 s.
        assert meter.windowed_rate(10.0) == pytest.approx(500.0)

    def test_windowed_rate_before_full_window(self):
        meter = RateMeter(window=10.0)
        meter.add(1.0, 100.0)
        # Only 1 second has elapsed; rate should not be diluted by the
        # un-elapsed window.
        assert meter.windowed_rate(1.0) == pytest.approx(100.0)

    def test_total(self):
        meter = RateMeter(window=1.0)
        meter.add(0.0, 3.0)
        meter.add(0.5, 4.0)
        assert meter.total == 7.0

    def test_empty_rates(self):
        meter = RateMeter(window=1.0)
        assert meter.cumulative_rate(0.0) == 0.0
        assert meter.windowed_rate(5.0) == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            RateMeter(window=0.0)
