"""Tests for sliding-window maxima and statistics."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats.windowed import SlidingWindowMax, SlidingWindowStats


class TestSlidingWindowMax:
    def test_max_within_window(self):
        swm = SlidingWindowMax(window=5.0)
        swm.add(0.0, 3.0)
        swm.add(1.0, 7.0)
        swm.add(2.0, 5.0)
        assert swm.max(2.0) == 7.0

    def test_old_samples_expire(self):
        swm = SlidingWindowMax(window=5.0)
        swm.add(0.0, 100.0)
        swm.add(4.0, 2.0)
        assert swm.max(4.0) == 100.0
        assert swm.max(6.0) == 2.0

    def test_default_when_empty(self):
        swm = SlidingWindowMax(window=1.0)
        assert swm.max(10.0, default=-1.0) == -1.0
        swm.add(0.0, 5.0)
        assert swm.max(100.0, default=0.0) == 0.0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            ),
            min_size=1,
            max_size=100,
        )
    )
    def test_matches_bruteforce(self, raw):
        samples = sorted(raw)
        window = 10.0
        swm = SlidingWindowMax(window=window)
        for t, v in samples:
            swm.add(t, v)
        now = samples[-1][0]
        expected = [v for t, v in samples if t > now - window]
        if expected:
            assert swm.max(now) == max(expected)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            SlidingWindowMax(0.0)


class TestSlidingWindowStats:
    def test_snapshot_mean_max(self):
        sws = SlidingWindowStats(window=10.0)
        sws.add(0.0, 2.0)
        sws.add(1.0, 4.0)
        snap = sws.snapshot(1.0)
        assert snap.mean == pytest.approx(3.0)
        assert snap.max == 4.0

    def test_expiry(self):
        sws = SlidingWindowStats(window=2.0)
        sws.add(0.0, 100.0)
        sws.add(3.0, 1.0)
        assert sws.mean(3.0) == pytest.approx(1.0)

    def test_defaults_when_empty(self):
        sws = SlidingWindowStats(window=1.0)
        assert sws.mean(0.0, default=9.0) == 9.0
        assert sws.max(0.0, default=-3.0) == -3.0
