"""Tests for source self-characterization (the b(r) curve, Section 4)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traffic.characterize import (
    SourceCharacterization,
    average_rate_bps,
    bucket_curve,
    choose_rate,
    delay_curve,
    peak_rate_bps,
)

# A simple bursty trace: 5 packets back at 100 ms spacing, then a 3-packet
# clump, all 1000 bits.
TRACE = [
    (0.0, 1000.0), (0.1, 1000.0), (0.2, 1000.0), (0.3, 1000.0),
    (0.4, 1000.0), (0.401, 1000.0), (0.402, 1000.0),
]


class TestRateBookends:
    def test_average_rate(self):
        total = 7000.0
        span = 0.402
        assert average_rate_bps(TRACE) == pytest.approx(total / span)

    def test_peak_rate(self):
        # Tightest gap 1 ms around a 1000-bit packet -> 1 Mbit/s.
        assert peak_rate_bps(TRACE) == pytest.approx(1_000_000.0)

    def test_zero_gap_gives_infinite_peak(self):
        assert peak_rate_bps([(0.0, 1000.0), (0.0, 1000.0)]) == float("inf")

    def test_single_arrival_average_is_inf(self):
        assert average_rate_bps([(0.0, 1000.0)]) == float("inf")

    def test_rejects_empty_and_bad_traces(self):
        with pytest.raises(ValueError):
            average_rate_bps([])
        with pytest.raises(ValueError):
            peak_rate_bps([(0.0, 0.0)])
        with pytest.raises(ValueError):
            average_rate_bps([(1.0, 1000.0), (0.5, 1000.0)])


class TestBucketCurve:
    def test_curve_is_nonincreasing_in_rate(self):
        rates = [1_000.0, 5_000.0, 20_000.0, 100_000.0, 1_000_000.0]
        depths = [depth for __, depth in bucket_curve(TRACE, rates)]
        assert depths == sorted(depths, reverse=True)

    def test_huge_rate_needs_one_packet(self):
        ((__, depth),) = bucket_curve(TRACE, [1e12])
        assert depth == pytest.approx(1000.0)

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            bucket_curve(TRACE, [])
        with pytest.raises(ValueError):
            bucket_curve(TRACE, [0.0])

    @given(
        gaps=st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=30
        ),
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=10_000.0),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_nonincreasing_property_any_trace(self, gaps, sizes):
        n = min(len(gaps), len(sizes))
        t = 0.0
        arrivals = []
        for gap, size in zip(gaps[:n], sizes[:n]):
            t += gap
            arrivals.append((t, size))
        rates = [100.0, 1_000.0, 10_000.0, 100_000.0]
        depths = [d for __, d in bucket_curve(arrivals, rates)]
        for a, b in zip(depths, depths[1:]):
            assert b <= a + 1e-6

    @given(
        sizes=st.lists(
            st.floats(min_value=1.0, max_value=10_000.0),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_depth_at_least_largest_packet(self, sizes):
        arrivals = [(0.1 * i, size) for i, size in enumerate(sizes)]
        ((__, depth),) = bucket_curve(arrivals, [1e9])
        assert depth >= max(sizes) - 1e-9


class TestDelayCurveAndChoice:
    def test_delay_curve_is_bucket_over_rate(self):
        rates = [10_000.0, 50_000.0]
        buckets = dict(bucket_curve(TRACE, rates))
        for rate, bound in delay_curve(TRACE, rates):
            assert bound == pytest.approx(buckets[rate] / rate)

    def test_choose_rate_picks_cheapest_sufficient(self):
        rates = [5_000.0, 20_000.0, 100_000.0, 1_000_000.0]
        rate, bound = choose_rate(TRACE, target_delay_seconds=0.5, rates_bps=rates)
        assert bound <= 0.5
        # Every cheaper sampled rate must miss the target.
        for other, other_bound in delay_curve(TRACE, rates):
            if other < rate:
                assert other_bound > 0.5

    def test_choose_rate_unreachable_target(self):
        with pytest.raises(ValueError):
            choose_rate(TRACE, target_delay_seconds=1e-9, rates_bps=[1_000.0])

    def test_choose_rate_rejects_bad_target(self):
        with pytest.raises(ValueError):
            choose_rate(TRACE, target_delay_seconds=0.0, rates_bps=[1_000.0])

    def test_delay_bound_honored_in_fluid_model(self):
        """End-to-end sanity: drain the trace through a leaky bucket at the
        chosen rate; no backlog episode lasts longer than the bound."""
        rates = [5_000.0, 20_000.0, 100_000.0]
        rate, bound = choose_rate(TRACE, target_delay_seconds=1.0, rates_bps=rates)
        # Simulate fluid drain at `rate`; track worst FIFO delay.
        backlog = 0.0
        last_t = TRACE[0][0]
        worst = 0.0
        for t, size in TRACE:
            backlog = max(0.0, backlog - (t - last_t) * rate)
            last_t = t
            backlog += size
            worst = max(worst, backlog / rate)
        assert worst <= bound + 1e-9


class TestSourceCharacterization:
    def test_bundles_everything(self):
        rates = [10_000.0, 100_000.0]
        c = SourceCharacterization.from_trace(TRACE, rates)
        assert c.average_bps > 0
        assert c.peak_bps == pytest.approx(1_000_000.0)
        assert len(c.curve) == 2
        assert c.bound_at(10_000.0) == pytest.approx(c.curve[0][1] / 10_000.0)

    def test_bound_at_unknown_rate(self):
        c = SourceCharacterization.from_trace(TRACE, [10_000.0])
        with pytest.raises(KeyError):
            c.bound_at(99.0)

    def test_render_contains_curve(self):
        c = SourceCharacterization.from_trace(TRACE, [10_000.0, 100_000.0])
        text = c.render()
        assert "b(r)" in text and "10.0" in text
