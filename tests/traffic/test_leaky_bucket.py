"""Tests for the fluid leaky bucket, including the b/r bound argument.

Section 4's intuition for the Parekh-Gallager bound: a flow conforming to
an (r, b) token bucket, drained through a leaky bucket of rate r, suffers
at most b/r delay.  The property test generates arbitrary arrivals,
computes their minimal conforming depth b(r), and checks the bound.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traffic.leaky_bucket import FluidLeakyBucket, leaky_bucket_delays
from repro.traffic.token_bucket import minimal_bucket_depth


class TestFluidLeakyBucket:
    def test_single_arrival_delay(self):
        bucket = FluidLeakyBucket(rate_bps=100.0)
        assert bucket.offer(50.0, 0.0) == pytest.approx(0.5)

    def test_backlog_drains_linearly(self):
        bucket = FluidLeakyBucket(rate_bps=100.0)
        bucket.offer(100.0, 0.0)
        assert bucket.backlog_at(0.5) == pytest.approx(50.0)
        assert bucket.backlog_at(2.0) == 0.0

    def test_backlog_accumulates(self):
        bucket = FluidLeakyBucket(rate_bps=100.0)
        bucket.offer(100.0, 0.0)
        delay = bucket.offer(100.0, 0.5)
        # 50 bits left + 100 new = 150 bits -> 1.5 s for the last bit.
        assert delay == pytest.approx(1.5)

    def test_backwards_time_rejected(self):
        bucket = FluidLeakyBucket(rate_bps=1.0)
        bucket.offer(1.0, 5.0)
        with pytest.raises(ValueError):
            bucket.backlog_at(4.0)

    def test_invalid_rate(self):
        with pytest.raises(ValueError):
            FluidLeakyBucket(rate_bps=0.0)

    def test_delays_helper(self):
        delays = leaky_bucket_delays([(0.0, 100.0), (0.0, 100.0)], 100.0)
        assert delays == pytest.approx([1.0, 2.0])


class TestBoverRBound:
    """The paper's leaky-bucket argument for the P-G bound."""

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=50.0, allow_nan=False),
                st.floats(min_value=1.0, max_value=500.0, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=1.0, max_value=200.0, allow_nan=False),
    )
    def test_max_delay_bounded_by_b_over_r(self, raw, rate):
        arrivals = sorted(raw)
        depth = minimal_bucket_depth(arrivals, rate)
        bucket = FluidLeakyBucket(rate_bps=rate)
        worst = bucket.max_delay(arrivals)
        assert worst <= depth / rate + 1e-9

    def test_bound_is_tight_for_greedy_burst(self):
        """A greedy source (full burst of b at once) achieves exactly b/r."""
        rate, depth = 100.0, 700.0
        bucket = FluidLeakyBucket(rate_bps=rate)
        assert bucket.offer(depth, 0.0) == pytest.approx(depth / rate)
