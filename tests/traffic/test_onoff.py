"""Tests for the two-state Markov on/off source (the Appendix workload)."""

import pytest

from repro.net.node import Host, Switch
from repro.net.packet import ServiceClass
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.onoff import OnOffMarkovSource, OnOffParams
from repro.traffic.token_bucket import minimal_bucket_depth


class RecordingSwitch(Switch):
    """A switch that records (time, packet) instead of forwarding."""

    def __init__(self, sim):
        super().__init__(sim, "S")
        self.record = []

    def receive(self, packet):
        self.record.append((self.sim.now, packet))


def build_source(sim, seed=1, average_rate=85.0, use_paper_filter=False, duration=60.0):
    switch = RecordingSwitch(sim)
    host = Host(sim, "H")
    host.attach(switch)
    rng = RandomStreams(seed=seed).stream("s")
    if use_paper_filter:
        source = OnOffMarkovSource.paper_source(
            sim, host, "f", "dst", rng, average_rate_pps=average_rate
        )
    else:
        source = OnOffMarkovSource(
            sim, host, "f", "dst", OnOffParams.paper_workload(average_rate), rng
        )
    sim.run(until=duration)
    return source, switch.record


class TestParams:
    def test_idle_mean_formula(self):
        # 1/A = I/B + 1/P  =>  I = B/(2A) when P = 2A.
        params = OnOffParams.paper_workload(85.0)
        assert params.mean_idle_seconds == pytest.approx(5.0 / (2 * 85.0))

    def test_peak_defaults_to_twice_average(self):
        params = OnOffParams(average_rate_pps=100.0)
        assert params.resolved_peak_rate == 200.0

    def test_validation(self):
        with pytest.raises(ValueError):
            OnOffParams(average_rate_pps=0.0)
        with pytest.raises(ValueError):
            OnOffParams(average_rate_pps=100.0, peak_rate_pps=50.0)
        with pytest.raises(ValueError):
            OnOffParams(average_rate_pps=10.0, mean_burst_packets=0.5)


class TestGeneration:
    def test_average_rate_close_to_A(self):
        sim = Simulator()
        source, record = build_source(sim, seed=3, duration=120.0)
        rate = source.generated / 120.0
        assert rate == pytest.approx(85.0, rel=0.1)

    def test_burst_spacing_is_peak_rate(self):
        sim = Simulator()
        __, record = build_source(sim, seed=4, duration=30.0)
        gaps = [b - a for (a, _), (b, _) in zip(record, record[1:])]
        spacing = 1.0 / 170.0
        # Every gap is either the in-burst spacing or a larger inter-burst
        # gap of at least spacing + idle; never shorter than 1/P.
        assert min(gaps) == pytest.approx(spacing, rel=1e-6)
        for gap in gaps:
            assert gap >= spacing - 1e-12

    def test_emission_conforms_to_peak_rate_one_packet_bucket(self):
        """The generation process conforms to (P, 1 packet) — this is what
        makes clock-rate-= peak guaranteed service have bound p/r per hop
        (Table 3's Peak rows)."""
        sim = Simulator()
        __, record = build_source(sim, seed=5, duration=60.0)
        arrivals = [(t, float(p.size_bits)) for t, p in record]
        depth = minimal_bucket_depth(arrivals, 170.0 * 1000.0)
        assert depth <= 1000.0 + 1e-6

    def test_paper_filter_drops_about_two_percent(self):
        sim = Simulator()
        source, __ = build_source(sim, seed=6, use_paper_filter=True, duration=300.0)
        drop_fraction = source.filtered / source.generated
        # The paper reports "about 2%"; accept a generous band.
        assert 0.002 < drop_fraction < 0.06

    def test_filtered_stream_conforms_to_declared_bucket(self):
        sim = Simulator()
        __, record = build_source(sim, seed=7, use_paper_filter=True, duration=120.0)
        arrivals = [(t, float(p.size_bits)) for t, p in record]
        depth = minimal_bucket_depth(arrivals, 85.0 * 1000.0)
        assert depth <= 50.0 * 1000.0 + 1e-6

    def test_stop_halts_emission(self):
        sim = Simulator()
        switch = RecordingSwitch(sim)
        host = Host(sim, "H")
        host.attach(switch)
        rng = RandomStreams(seed=8).stream("s")
        source = OnOffMarkovSource(
            sim, host, "f", "dst", OnOffParams.paper_workload(85.0), rng
        )
        sim.schedule(5.0, source.stop)
        sim.run(until=30.0)
        assert source.stopped
        assert all(t <= 5.0 for t, _ in switch.record)

    def test_sequence_numbers_increase(self):
        sim = Simulator()
        __, record = build_source(sim, seed=9, duration=10.0)
        seqs = [p.sequence for _, p in record]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)

    def test_service_class_stamped(self):
        sim = Simulator()
        switch = RecordingSwitch(sim)
        host = Host(sim, "H")
        host.attach(switch)
        rng = RandomStreams(seed=10).stream("s")
        OnOffMarkovSource(
            sim,
            host,
            "f",
            "dst",
            OnOffParams.paper_workload(85.0),
            rng,
            service_class=ServiceClass.PREDICTED,
            priority_class=1,
        )
        sim.run(until=5.0)
        assert switch.record
        assert all(
            p.service_class is ServiceClass.PREDICTED and p.priority_class == 1
            for _, p in switch.record
        )

    def test_deterministic_given_seed(self):
        sim1 = Simulator()
        __, record1 = build_source(sim1, seed=11, duration=20.0)
        sim2 = Simulator()
        __, record2 = build_source(sim2, seed=11, duration=20.0)
        assert [t for t, _ in record1] == [t for t, _ in record2]
