"""Tests for CBR, Poisson, trace sources, and the recording sink."""

import pytest

from repro.net.node import Host, Switch
from repro.sim.engine import Simulator
from repro.sim.randomness import RandomStreams
from repro.traffic.cbr import CbrSource
from repro.traffic.poisson import PoissonSource
from repro.traffic.sink import DelayRecordingSink
from repro.traffic.trace import TraceSource


class RecordingSwitch(Switch):
    def __init__(self, sim):
        super().__init__(sim, "S")
        self.record = []

    def receive(self, packet):
        self.record.append((self.sim.now, packet))


def rig(sim):
    switch = RecordingSwitch(sim)
    host = Host(sim, "H")
    host.attach(switch)
    return host, switch


class TestCbr:
    def test_exact_spacing(self, sim):
        host, switch = rig(sim)
        CbrSource(sim, host, "f", "dst", rate_pps=10.0)
        sim.run(until=1.0)
        times = [t for t, _ in switch.record]
        assert times == pytest.approx([0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0])

    def test_start_offset(self, sim):
        host, switch = rig(sim)
        CbrSource(sim, host, "f", "dst", rate_pps=10.0, start_offset=0.05)
        sim.run(until=0.3)
        assert switch.record[0][0] == pytest.approx(0.05)

    def test_invalid_rate(self, sim):
        host, __ = rig(sim)
        with pytest.raises(ValueError):
            CbrSource(sim, host, "f", "dst", rate_pps=0.0)


class TestPoisson:
    def test_mean_rate(self, sim):
        host, switch = rig(sim)
        rng = RandomStreams(seed=2).stream("p")
        source = PoissonSource(sim, host, "f", "dst", rate_pps=200.0, rng=rng)
        sim.run(until=60.0)
        assert source.sent / 60.0 == pytest.approx(200.0, rel=0.1)

    def test_gaps_are_variable(self, sim):
        host, switch = rig(sim)
        rng = RandomStreams(seed=2).stream("p")
        PoissonSource(sim, host, "f", "dst", rate_pps=100.0, rng=rng)
        sim.run(until=5.0)
        gaps = {
            round(b - a, 9)
            for (a, _), (b, _) in zip(switch.record, switch.record[1:])
        }
        assert len(gaps) > 10  # not CBR


class TestTrace:
    def test_replays_schedule(self, sim):
        host, switch = rig(sim)
        schedule = [(0.5, 100), (0.1, 200), (0.9, 300)]
        TraceSource(sim, host, "f", "dst", schedule)
        sim.run_until_idle()
        assert [(t, p.size_bits) for t, p in switch.record] == [
            (0.1, 200), (0.5, 100), (0.9, 300),
        ]

    def test_past_entries_rejected(self, sim):
        host, __ = rig(sim)
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle()
        with pytest.raises(ValueError):
            TraceSource(sim, host, "f", "dst", [(0.5, 100)])

    def test_invalid_sizes_rejected(self, sim):
        host, __ = rig(sim)
        with pytest.raises(ValueError):
            TraceSource(sim, host, "f", "dst", [(0.5, 0)])


class TestSink:
    def test_records_queueing_delay(self, sim):
        host, __ = rig(sim)
        sink = DelayRecordingSink(sim, host, "f")
        from tests.conftest import make_packet

        packet = make_packet(flow_id="f")
        packet.queueing_delay = 0.005
        sim.schedule(1.0, lambda: host.receive(packet))
        sim.run_until_idle()
        assert sink.recorded == 1
        assert sink.mean_queueing(0.001) == pytest.approx(5.0)
        assert sink.end_to_end.mean == pytest.approx(1.0)

    def test_warmup_excludes_early_packets(self, sim):
        host, __ = rig(sim)
        sink = DelayRecordingSink(sim, host, "f", warmup=10.0)
        from tests.conftest import make_packet

        early = make_packet(flow_id="f")
        late = make_packet(flow_id="f")
        late.queueing_delay = 0.002
        sim.schedule(1.0, lambda: host.receive(early))
        sim.schedule(11.0, lambda: host.receive(late))
        sim.run_until_idle()
        assert sink.received == 2
        assert sink.recorded == 1
        assert sink.mean_queueing(0.001) == pytest.approx(2.0)

    def test_percentile_and_max(self, sim):
        host, __ = rig(sim)
        sink = DelayRecordingSink(sim, host, "f")
        from tests.conftest import make_packet

        for i in range(100):
            packet = make_packet(flow_id="f")
            packet.queueing_delay = i * 0.001
            host.receive(packet)
        assert sink.max_queueing(0.001) == pytest.approx(99.0)
        assert sink.percentile_queueing(50, 0.001) == pytest.approx(49.5)
