"""Tests for token bucket filters, including property-based conformance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net.packet import Packet
from repro.traffic.token_bucket import (
    NonconformingPolicy,
    TokenBucket,
    TokenBucketFilter,
    conforms,
    minimal_bucket_depth,
)
from tests.conftest import make_packet


class TestTokenBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate_bps=100.0, depth_bits=500.0)
        assert bucket.tokens_at(0.0) == 500.0

    def test_consume_depletes(self):
        bucket = TokenBucket(rate_bps=100.0, depth_bits=500.0)
        assert bucket.try_consume(300.0, 0.0)
        assert bucket.tokens_at(0.0) == pytest.approx(200.0)

    def test_refill_rate(self):
        bucket = TokenBucket(rate_bps=100.0, depth_bits=500.0)
        bucket.try_consume(500.0, 0.0)
        assert bucket.tokens_at(2.0) == pytest.approx(200.0)

    def test_refill_caps_at_depth(self):
        bucket = TokenBucket(rate_bps=100.0, depth_bits=500.0)
        bucket.try_consume(100.0, 0.0)
        assert bucket.tokens_at(100.0) == 500.0

    def test_nonconforming_consumes_nothing(self):
        bucket = TokenBucket(rate_bps=100.0, depth_bits=500.0)
        assert not bucket.try_consume(600.0, 0.0)
        assert bucket.tokens_at(0.0) == 500.0

    def test_paper_recurrence(self):
        """n_i = MIN[b, n_{i-1} + (t_i - t_{i-1}) r - p_i] stays >= 0 for a
        conforming sequence; our bucket agrees packet by packet."""
        r, b, p = 10.0, 50.0, 10.0
        times = [0.0, 1.0, 1.5, 4.0, 4.1, 4.2, 4.3, 4.4]
        bucket = TokenBucket(rate_bps=r, depth_bits=b)
        n = b
        for i, t in enumerate(times):
            if i > 0:
                n = min(b, n + (t - times[i - 1]) * r)
            expected_ok = n >= p
            assert bucket.try_consume(p, t) == expected_ok
            if expected_ok:
                n -= p

    def test_backwards_time_rejected(self):
        bucket = TokenBucket(rate_bps=1.0, depth_bits=1.0)
        bucket.try_consume(0.5, 5.0)
        with pytest.raises(ValueError):
            bucket.tokens_at(4.0)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=0.0, depth_bits=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_bps=1.0, depth_bits=0.0)

    def test_start_empty(self):
        bucket = TokenBucket(rate_bps=100.0, depth_bits=500.0, full_at_start=False)
        assert not bucket.try_consume(1.0, 0.0)
        assert bucket.try_consume(100.0, 1.0)


class TestFilter:
    def test_drop_policy(self):
        filt = TokenBucketFilter(100.0, 1000.0, NonconformingPolicy.DROP)
        assert filt.check(make_packet(size_bits=1000), 0.0)
        assert not filt.check(make_packet(size_bits=1000), 0.0)
        assert filt.conforming == 1
        assert filt.nonconforming == 1
        assert filt.drop_fraction == pytest.approx(0.5)

    def test_tag_policy_passes_but_marks(self):
        filt = TokenBucketFilter(100.0, 1000.0, NonconformingPolicy.TAG)
        first = make_packet(size_bits=1000)
        second = make_packet(size_bits=1000)
        assert filt.check(first, 0.0)
        assert filt.check(second, 0.0)
        assert not first.tagged
        assert second.tagged


class TestMinimalDepth:
    def test_single_packet(self):
        assert minimal_bucket_depth([(0.0, 100.0)], 10.0) == 100.0

    def test_burst_needs_sum(self):
        arrivals = [(0.0, 100.0), (0.0, 100.0), (0.0, 100.0)]
        assert minimal_bucket_depth(arrivals, 10.0) == 300.0

    def test_spaced_arrivals_need_one_packet(self):
        # Packets exactly at the token rate: depth of one packet suffices.
        arrivals = [(float(i), 10.0) for i in range(100)]
        assert minimal_bucket_depth(arrivals, 10.0) == pytest.approx(10.0)

    def test_non_increasing_in_rate(self):
        arrivals = [(0.0, 50.0), (1.0, 50.0), (1.1, 50.0), (5.0, 10.0)]
        depths = [minimal_bucket_depth(arrivals, r) for r in (1.0, 5.0, 25.0, 100.0)]
        assert depths == sorted(depths, reverse=True)

    def test_unordered_rejected(self):
        with pytest.raises(ValueError):
            minimal_bucket_depth([(1.0, 10.0), (0.0, 10.0)], 1.0)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.floats(min_value=1.0, max_value=1000.0, allow_nan=False),
            ),
            min_size=1,
            max_size=60,
        ),
        st.floats(min_value=0.5, max_value=1000.0, allow_nan=False),
    )
    def test_depth_is_exactly_sufficient(self, raw, rate):
        """b(r) conforms, and (1-eps) * b(r) does not (property)."""
        arrivals = sorted(raw)
        depth = minimal_bucket_depth(arrivals, rate)
        assert conforms(arrivals, rate, depth)
        if depth > max(size for _, size in arrivals):
            assert not conforms(arrivals, rate, depth * 0.99 - 1e-6)

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.floats(min_value=1.0, max_value=100.0, allow_nan=False),
            ),
            min_size=1,
            max_size=50,
        ),
        st.floats(min_value=0.5, max_value=100.0, allow_nan=False),
    )
    def test_depth_matches_bucket_simulation(self, raw, rate):
        """A fresh bucket of depth b(r) accepts every packet (property)."""
        arrivals = sorted(raw)
        depth = minimal_bucket_depth(arrivals, rate)
        bucket = TokenBucket(rate_bps=rate, depth_bits=depth + 1e-6)
        assert all(bucket.try_consume(size, t) for t, size in arrivals)
