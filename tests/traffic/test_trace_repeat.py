"""Tests for the cyclic trace replay (TraceSource.repeat_every)."""

import pytest

from repro.net.topology import single_link_topology
from repro.sched.fifo import FifoScheduler
from repro.traffic.trace import TraceSource


@pytest.fixture
def rig(sim):
    net = single_link_topology(sim, lambda n, l: FifoScheduler())
    arrivals = []
    net.hosts["dst-host"].register_flow_handler(
        "f", lambda packet: arrivals.append((sim.now, packet.size_bits))
    )
    return net, arrivals


class TestTraceRepeat:
    def test_single_shot_without_repeat(self, sim, rig):
        net, arrivals = rig
        TraceSource(
            sim, net.hosts["src-host"], "f", "dst-host",
            schedule=[(0.0, 1000), (0.1, 1000)],
        )
        sim.run(until=5.0)
        assert len(arrivals) == 2

    def test_repeat_replays_each_period(self, sim, rig):
        net, arrivals = rig
        source = TraceSource(
            sim, net.hosts["src-host"], "f", "dst-host",
            schedule=[(0.0, 1000), (0.1, 500)],
            repeat_every=1.0,
        )
        sim.run(until=3.5)  # cycles at 0, 1, 2, 3
        assert len(arrivals) == 8
        # Cycle 5 (offset 4.0) is already *scheduled* — arming happens at
        # the previous cycle's last emission — but has not emitted.
        assert source.cycles_started == 5
        # Sizes replay identically each cycle.
        sizes = [size for __, size in arrivals]
        assert sizes == [1000, 500] * 4
        # Second cycle lands exactly one period later.
        assert arrivals[2][0] == pytest.approx(arrivals[0][0] + 1.0)

    def test_stop_halts_future_cycles(self, sim, rig):
        net, arrivals = rig
        source = TraceSource(
            sim, net.hosts["src-host"], "f", "dst-host",
            schedule=[(0.0, 1000)],
            repeat_every=0.5,
        )
        sim.schedule(1.2, source.stop)
        sim.run(until=5.0)
        # Cycles fired at 0, 0.5, 1.0; stopped before 1.5.
        assert len(arrivals) == 3

    def test_period_must_exceed_span(self, sim, rig):
        net, __ = rig
        with pytest.raises(ValueError):
            TraceSource(
                sim, net.hosts["src-host"], "f", "dst-host",
                schedule=[(0.0, 1000), (1.0, 1000)],
                repeat_every=1.0,
            )

    def test_empty_schedule_rejected(self, sim, rig):
        net, __ = rig
        with pytest.raises(ValueError):
            TraceSource(sim, net.hosts["src-host"], "f", "dst-host", schedule=[])
