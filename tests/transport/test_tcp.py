"""Tests for the simplified TCP transport."""

import pytest

from repro.net.topology import chain_topology, single_link_topology
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.transport.tcp import TcpConfig, TcpConnection


def duplex_net(sim, buffer_packets=200, rate_bps=1_000_000):
    return chain_topology(
        sim,
        lambda n, l: FifoScheduler(),
        num_switches=2,
        rate_bps=rate_bps,
        buffer_packets=buffer_packets,
        duplex=True,
        switch_names=["A", "B"],
        host_names=["ha", "hb"],
    )


def make_conn(sim, net, **config_overrides):
    config = TcpConfig(**config_overrides) if config_overrides else TcpConfig()
    return TcpConnection(
        sim, net.hosts["ha"], net.hosts["hb"], "tcp", config
    )


class TestTcpConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"segment_bits": 0},
            {"ack_bits": -1},
            {"initial_cwnd": 0.5},
            {"min_rto": 0.0},
            {"min_rto": 2.0, "max_rto": 1.0},
            {"dupack_threshold": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValueError):
            TcpConfig(**kwargs)


class TestSlowStart:
    def test_cwnd_doubles_per_rtt_initially(self, sim):
        net = duplex_net(sim)
        conn = make_conn(sim, net)
        sim.run(until=0.05)  # a few RTTs (RTT ~ 2 ms)
        # cwnd has grown well beyond the initial value and (absent loss)
        # stays under the slow-start threshold or the cap.
        assert conn.cwnd > 4
        assert conn.timeouts == 0

    def test_in_order_delivery(self, sim):
        net = duplex_net(sim)
        conn = make_conn(sim, net)
        sim.run(until=1.0)
        # Receiver saw a contiguous prefix: delivered == recv_next.
        assert conn.segments_delivered == conn.recv_next
        assert conn.segments_delivered > 100

    def test_goodput_approaches_link_rate_when_alone(self, sim):
        net = duplex_net(sim)
        conn = make_conn(sim, net, max_cwnd=64.0)
        duration = 5.0
        sim.run(until=duration)
        # Alone on a 1 Mbit/s link the transfer should reach most of it.
        assert conn.goodput_bps(duration) > 0.5 * 1_000_000

    def test_rtt_estimator_converges(self, sim):
        net = duplex_net(sim)
        conn = make_conn(sim, net)
        sim.run(until=1.0)
        # Base RTT: 2 store-and-forward hops of 1 ms each way = ~2 ms plus
        # queueing; SRTT must be positive and sane (well under a second).
        assert conn.srtt is not None
        assert 0.001 < conn.srtt < 1.0


class TestCongestion:
    def test_loss_triggers_retransmissions_and_recovery(self, sim):
        # An 8-packet buffer forces drops once cwnd exceeds the pipe.
        net = duplex_net(sim, buffer_packets=8)
        conn = make_conn(sim, net, max_cwnd=64.0)
        sim.run(until=5.0)
        assert conn.retransmits > 0
        # Fast retransmit should carry most recoveries (RTO is rare when
        # dupacks flow back).
        assert conn.fast_retransmits >= 1
        # Despite losses, delivery is contiguous and substantial.
        assert conn.segments_delivered == conn.recv_next
        assert conn.segments_delivered > 100

    def test_multiplicative_decrease_on_fast_retransmit(self, sim):
        net = duplex_net(sim, buffer_packets=8)
        conn = make_conn(sim, net, max_cwnd=64.0)
        peak = 0.0
        post_loss = []

        def watch():
            nonlocal peak
            peak = max(peak, conn.cwnd)
            if conn.fast_retransmits > 0 and len(post_loss) < 1:
                post_loss.append(conn.cwnd)
            if sim.now < 4.9:
                sim.schedule(0.01, watch)

        sim.schedule(0.01, watch)
        sim.run(until=5.0)
        assert post_loss, "expected at least one fast retransmit"
        assert post_loss[0] < peak

    def test_two_connections_share_a_bottleneck(self, sim):
        net = duplex_net(sim, buffer_packets=20)
        a = TcpConnection(sim, net.hosts["ha"], net.hosts["hb"], "t1", TcpConfig())
        b = TcpConnection(sim, net.hosts["ha"], net.hosts["hb"], "t2", TcpConfig())
        duration = 10.0
        sim.run(until=duration)
        ga = a.goodput_bps(duration)
        gb = b.goodput_bps(duration)
        # Both make progress; combined they fill most of the link.
        assert ga > 100_000 and gb > 100_000
        assert ga + gb > 0.7 * 1_000_000


class TestTimeout:
    def test_total_blackout_causes_rto_backoff(self, sim):
        net = duplex_net(sim)
        conn = make_conn(sim, net)
        # Install a filter that kills every data packet: ACKs never come.
        port = net.port_for_link("A->B")
        port.filters.append(lambda packet, now: packet.flow_id != "tcp")
        sim.run(until=30.0)
        state = conn.sender_state()
        assert state.timeouts >= 2
        assert state.cwnd == 1.0
        # Exponential backoff pushed the RTO up.
        assert state.rto > 1.0

    def test_stop_halts_transmission(self, sim):
        net = duplex_net(sim)
        conn = make_conn(sim, net)
        sim.run(until=0.1)
        conn.stop()
        sent_at_stop = conn.segments_sent
        sim.run(until=1.0)
        assert conn.segments_sent == sent_at_stop


class TestSenderState:
    def test_snapshot_reflects_connection(self, sim):
        net = duplex_net(sim)
        conn = make_conn(sim, net)
        sim.run(until=0.5)
        state = conn.sender_state()
        assert state.next_seq == conn.next_seq
        assert state.highest_ack == conn.highest_ack
        assert state.cwnd == conn.cwnd
        assert state.next_seq >= state.highest_ack

    def test_goodput_zero_for_nonpositive_elapsed(self, sim):
        net = duplex_net(sim)
        conn = make_conn(sim, net)
        assert conn.goodput_bps(0.0) == 0.0
        assert conn.goodput_bps(-1.0) == 0.0
