"""Tests for the fire-and-forget datagram sender."""

import pytest

from repro.net.topology import single_link_topology
from repro.sched.fifo import FifoScheduler
from repro.transport.udp import UdpSender


@pytest.fixture
def net(sim):
    return single_link_topology(sim, lambda n, l: FifoScheduler())


class TestUdpSender:
    def test_packets_arrive_in_order(self, sim, net):
        sender = UdpSender(sim, net.hosts["src-host"], "u", "dst-host")
        got = []
        net.hosts["dst-host"].register_flow_handler(
            "u", lambda packet: got.append(packet.sequence)
        )
        for __ in range(5):
            sender.send()
        sim.run(until=1.0)
        assert got == [0, 1, 2, 3, 4]
        assert sender.sent == 5

    def test_send_returns_the_packet(self, sim, net):
        sender = UdpSender(sim, net.hosts["src-host"], "u", "dst-host")
        packet = sender.send(payload={"k": 1})
        assert packet.flow_id == "u"
        assert packet.payload == {"k": 1}
        assert packet.sequence == 0

    def test_size_override(self, sim, net):
        sender = UdpSender(
            sim, net.hosts["src-host"], "u", "dst-host", packet_size_bits=500
        )
        assert sender.send().size_bits == 500
        assert sender.send(size_bits=2000).size_bits == 2000

    def test_burst_overflows_finite_buffer(self, sim):
        net = single_link_topology(
            sim, lambda n, l: FifoScheduler(), buffer_packets=10
        )
        sender = UdpSender(sim, net.hosts["src-host"], "u", "dst-host")
        port = net.port_for_link("A->B")
        sender.send_burst(50)
        # 10 buffered + 1 on the wire; the rest die.
        assert port.packets_dropped == 39
        sim.run(until=1.0)
        assert port.packets_out == 11

    def test_rejects_bad_size(self, sim, net):
        with pytest.raises(ValueError):
            UdpSender(
                sim, net.hosts["src-host"], "u", "dst-host", packet_size_bits=0
            )
