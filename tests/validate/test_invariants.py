"""Unit tests of the audit tap and the invariant checks themselves.

The property suite (``test_properties.py``) asserts the invariants hold
across generated scenarios; this file asserts the *checker* works — it
passes on known-good runs of every discipline family, detects seeded
violations, and its results serialize and travel with run payloads.
"""

import json
import pickle

import pytest

from repro.net.packet import Packet, ServiceClass
from repro.scenario import (
    DisciplineSpec,
    ScenarioBuilder,
    ScenarioRunner,
    ScenarioSpec,
)
from repro.validate import (
    InvariantCheck,
    InvariantViolation,
    SimulationAudit,
    assert_clean,
    check_invariants,
    invariants_summary,
)

DURATION = 8.0


def single_link_spec(*disciplines, validate=True, flows=6):
    builder = (
        ScenarioBuilder("validate-unit")
        .single_link()
        .paper_flows(flows, service_class=ServiceClass.PREDICTED)
        .disciplines(*disciplines)
        .duration(DURATION)
        .warmup(1.0)
        .seed(5)
    )
    if validate:
        builder.validate()
    return builder.build()


class TestAuditAttachment:
    def test_unvalidated_context_has_no_audit(self):
        spec = single_link_spec(DisciplineSpec.fifo(), validate=False)
        context = ScenarioRunner(spec).build()
        assert context.audit is None

    def test_validated_context_attaches_audit(self):
        spec = single_link_spec(DisciplineSpec.fifo())
        context = ScenarioRunner(spec).build()
        assert isinstance(context.audit, SimulationAudit)
        assert set(context.audit.ports) == set(context.net.ports)

    def test_audit_does_not_perturb_results(self):
        """Audited runs are bit-identical to unaudited ones."""
        plain = ScenarioRunner(
            single_link_spec(DisciplineSpec.fifoplus(), validate=False)
        ).run()
        audited = ScenarioRunner(
            single_link_spec(DisciplineSpec.fifoplus())
        ).run()
        expected = plain.runs[0].comparable_dict()
        got = audited.runs[0].comparable_dict()
        del got["invariants"]
        assert got == expected

    def test_check_requires_audit(self):
        spec = single_link_spec(DisciplineSpec.fifo(), validate=False)
        context = ScenarioRunner(spec).build()
        context.run()
        with pytest.raises(ValueError, match="not audited"):
            check_invariants(context)


class TestInvariantsPassOnKnownGoodRuns:
    @pytest.mark.parametrize(
        "discipline",
        [
            DisciplineSpec.fifo(),
            DisciplineSpec.fifoplus(),
            DisciplineSpec.wfq(equal_share_flows=6),
            DisciplineSpec.unified(name="CSZ"),
            DisciplineSpec.virtual_clock(equal_share_flows=6),
            DisciplineSpec.round_robin(),
            DisciplineSpec.drr(),
            DisciplineSpec.priority(num_classes=2),
            DisciplineSpec.edf(),
        ],
    )
    def test_discipline_clean(self, discipline):
        result = ScenarioRunner(single_link_spec(discipline)).run()
        run = result.runs[0]
        assert run.invariants is not None
        assert run.invariants_clean, invariants_summary(run.invariants)

    def test_checks_cover_the_advertised_invariants(self):
        result = ScenarioRunner(
            single_link_spec(DisciplineSpec.fifo())
        ).run()
        names = {check.name for check in result.runs[0].invariants}
        assert names == {
            "port-conservation",
            "flow-conservation",
            "flow-fifo",
            "guaranteed-delay-bound",
            "queue-bounds",
            "clock-monotonic",
            "route-liveness",
            "eligibility-time",
        }

    def test_fifo_ports_are_asserted_fifoplus_ports_observed(self):
        fifo = ScenarioRunner(single_link_spec(DisciplineSpec.fifo())).run()
        plus = ScenarioRunner(
            single_link_spec(DisciplineSpec.fifoplus())
        ).run()
        assert fifo.runs[0].invariant("flow-fifo").checked == 1
        assert plus.runs[0].invariant("flow-fifo").checked == 0
        assert "statistical" in plus.runs[0].invariant("flow-fifo").detail


class TestAuditDetectsViolations:
    """Feed the tap synthetic event streams and watch it object."""

    def _audited_port(self):
        spec = single_link_spec(DisciplineSpec.fifo())
        context = ScenarioRunner(spec).build()
        audit = context.audit
        port = context.net.ports["A->B"]
        return context, audit, port

    def _packet(self, flow="flow-0"):
        return Packet(
            flow_id=flow,
            size_bits=1000,
            created_at=0.0,
            source="src-host",
            destination="dst-host",
        )

    def test_departure_of_unseen_packet_is_a_teleport(self):
        context, audit, port = self._audited_port()
        ghost = self._packet()
        for listener in port.on_depart:
            listener(ghost, 1.0, 0.5)
        assert audit.fifo_violations == 1
        assert any("never enqueued" in v for v in audit.violations)

    def test_out_of_order_departure_on_fifo_port_is_a_violation(self):
        context, audit, port = self._audited_port()
        first, second = self._packet(), self._packet()
        for listener in port.on_enqueue:
            listener(first, 1.0)
            listener(second, 1.0)
        for listener in port.on_depart:
            listener(second, 2.0, 1.0)  # younger sibling served first
        assert audit.fifo_violations == 1
        assert audit.reordered_total() == 1

    def test_backwards_clock_is_recorded(self):
        context, audit, port = self._audited_port()
        for listener in port.on_enqueue:
            listener(self._packet(), 5.0)
            listener(self._packet(), 4.0)
        assert audit.clock_violations == 1

    def test_negative_wait_is_recorded(self):
        context, audit, port = self._audited_port()
        packet = self._packet()
        for listener in port.on_enqueue:
            listener(packet, 1.0)
        for listener in port.on_depart:
            listener(packet, 2.0, -0.25)
        assert audit.negative_wait_violations == 1

    def test_violations_fail_the_post_run_checks(self):
        context, audit, port = self._audited_port()
        ghost = self._packet()
        for listener in port.on_depart:
            listener(ghost, 1.0, 0.5)
        context.run()
        checks = context.collect().invariants
        fifo = [c for c in checks if c.name == "flow-fifo"][0]
        assert not fifo.ok
        with pytest.raises(InvariantViolation, match="flow-fifo"):
            assert_clean(checks)

    def test_detail_capped_but_counts_exact(self):
        context, audit, port = self._audited_port()
        for i in range(100):
            for listener in port.on_depart:
                listener(self._packet(), 1.0, 0.0)
        assert audit.fifo_violations == 100
        assert len(audit.violations) <= 25


class TestResultPlumbing:
    def test_invariants_travel_in_to_dict_and_pickle(self):
        result = ScenarioRunner(single_link_spec(DisciplineSpec.fifo())).run()
        run = result.runs[0]
        payload = json.loads(json.dumps(run.to_dict()))
        assert [c["name"] for c in payload["invariants"]] == [
            c.name for c in run.invariants
        ]
        clone = pickle.loads(pickle.dumps(run))
        assert clone.invariants == run.invariants

    def test_unvalidated_payload_has_no_invariants_key(self):
        """Goldens of unvalidated runs stay byte-identical."""
        result = ScenarioRunner(
            single_link_spec(DisciplineSpec.fifo(), validate=False)
        ).run()
        run = result.runs[0]
        assert "invariants" not in run.to_dict()
        with pytest.raises(ValueError, match="not validated"):
            run.invariants_clean

    def test_invariant_check_round_trips(self):
        check = InvariantCheck(
            name="port-conservation", ok=False, checked=4, violations=2,
            detail="x",
        )
        assert InvariantCheck.from_dict(check.to_dict()) == check

    def test_spec_validate_flag_round_trips(self):
        spec = single_link_spec(DisciplineSpec.fifo())
        assert spec.validate is True
        clone = ScenarioSpec.from_dict(
            json.loads(json.dumps(spec.to_dict()))
        )
        assert clone == spec
        assert clone.validate is True
