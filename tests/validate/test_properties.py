"""Property suite: invariants over a grid of generated scenarios.

For sampled operating points (random graphs, scale-free graphs, WAN
paths, access/core fan-in) × scheduling disciplines, every simulation
must satisfy the architecture's ground rules: packets are conserved,
per-flow FIFO order holds wherever the scheduler guarantees it,
guaranteed flows stay below their Parekh-Gallager bounds, and the same
seed produces bit-identical results whether the sweep runs in one
process or four.
"""

import pytest

from repro.scenario import (
    DisciplineSpec,
    ScenarioRunner,
    SweepExecutor,
    generators,
)
from repro.validate import invariants_summary

DURATION = 4.0
WARMUP = 0.5

GRID_DISCIPLINES = {
    "fifo": DisciplineSpec.fifo(),
    "fifoplus": DisciplineSpec.fifoplus(),
    "wfq": DisciplineSpec.wfq(equal_share_flows=24),
    "unified": DisciplineSpec.unified(name="CSZ"),
}


def run_validated(spec):
    result = ScenarioRunner(spec).run()
    assert len(result.runs) == len(spec.disciplines)
    return result


class TestGeneratedGridInvariants:
    """Generated scenario × discipline grid: every invariant must hold."""

    @pytest.mark.parametrize("gen_seed", [1, 2, 3])
    @pytest.mark.parametrize("discipline", sorted(GRID_DISCIPLINES))
    def test_random_graph_grid(self, gen_seed, discipline):
        spec = generators.random_graph(
            gen_seed=gen_seed,
            duration=DURATION,
            warmup=WARMUP,
            disciplines=(GRID_DISCIPLINES[discipline],),
        )
        for run in run_validated(spec).runs:
            assert run.invariants_clean, invariants_summary(run.invariants)
            assert run.invariant("port-conservation").checked == len(
                spec.topology.links
            )
            assert run.invariant("flow-conservation").checked == len(
                spec.flows
            )

    @pytest.mark.parametrize(
        "family",
        ["scale_free", "wan_path", "access_core"],
    )
    def test_other_families_default_disciplines(self, family):
        spec = getattr(generators, family)(
            gen_seed=2, duration=DURATION, warmup=WARMUP
        )
        for run in run_validated(spec).runs:
            assert run.invariants_clean, invariants_summary(run.invariants)

    def test_flow_fifo_actively_checked_under_fifo(self):
        spec = generators.random_graph(
            gen_seed=1,
            duration=DURATION,
            warmup=WARMUP,
            disciplines=(DisciplineSpec.fifo(),),
        )
        run = run_validated(spec).runs[0]
        check = run.invariant("flow-fifo")
        assert check.ok
        # Every port runs FIFO, so every port is asserted, not observed.
        assert check.checked == len(spec.topology.links)


class TestGuaranteedDelayBounds:
    """WFQ/CSZ guaranteed flows must respect their P-G bounds."""

    @pytest.mark.parametrize("gen_seed", [1, 2])
    def test_wan_guaranteed_bounds_hold(self, gen_seed):
        spec = generators.wan_guaranteed(
            gen_seed=gen_seed, duration=DURATION, warmup=WARMUP
        )
        guaranteed = [f for f in spec.flows if f.request is not None]
        assert guaranteed, "generator placed no guaranteed flows"
        for run in run_validated(spec).runs:
            assert run.invariants_clean, invariants_summary(run.invariants)
            check = run.invariant("guaranteed-delay-bound")
            # Every guaranteed flow is eligible: rate-capable disciplines
            # on the whole path and a conforming source bucket.
            assert check.checked == len(guaranteed)

    def test_bound_not_checked_under_non_rate_disciplines(self):
        spec = generators.wan_guaranteed(
            gen_seed=1, duration=DURATION, warmup=WARMUP
        )
        # Strip the requests (FIFO cannot install clock rates) and rerun
        # under FIFO: the bound invariant must skip, not fail.
        import dataclasses

        flows = tuple(
            dataclasses.replace(
                flow,
                request=None,
            )
            for flow in spec.flows
        )
        fifo_spec = spec.replace(
            flows=flows, disciplines=(DisciplineSpec.fifo(),)
        )
        run = run_validated(fifo_spec).runs[0]
        assert run.invariant("guaranteed-delay-bound").checked == 0
        assert run.invariants_clean


class TestPairedArrivalDeterminism:
    """Same seed ⇒ bit-identical arrivals, serial or pooled."""

    def test_workers_1_vs_4_bit_identical(self):
        spec = generators.random_graph(
            gen_seed=3, duration=DURATION, warmup=WARMUP
        )
        serial = ScenarioRunner(spec).run(workers=1)
        pooled = ScenarioRunner(spec).run(workers=4)
        assert serial.comparable_dict() == pooled.comparable_dict()

    def test_sweep_over_generated_specs_matches_direct_runs(self):
        """Generated specs ride sweeps as whole-spec overrides."""
        specs = [
            generators.random_graph(
                gen_seed=g, duration=DURATION, warmup=WARMUP
            )
            for g in (1, 2)
        ]
        with SweepExecutor(workers=2) as executor:
            outcome = executor.run_sweep(specs[0], over=list(specs))
        direct = [ScenarioRunner(spec).run() for spec in specs]
        assert [r.comparable_dict() for r in outcome.results] == [
            r.comparable_dict() for r in direct
        ]

    def test_arrival_process_identical_across_disciplines(self):
        """The paired-arrival guarantee extends to generated populations:
        every discipline of one spec sees the same per-flow emissions."""
        spec = generators.random_graph(
            gen_seed=4, duration=DURATION, warmup=WARMUP
        )
        result = run_validated(spec)
        reference = {
            stats.name: (stats.generated, stats.emitted, stats.filtered)
            for stats in result.runs[0].flows
        }
        for run in result.runs[1:]:
            got = {
                stats.name: (stats.generated, stats.emitted, stats.filtered)
                for stats in run.flows
            }
            assert got == reference
