"""Scenario-level control-plane validation: conservation across reroutes,
route-liveness, eligibility-time, and the reroute edge cases.

Everything here runs real :class:`~repro.scenario.ScenarioRunner`
simulations with ``validate=True`` and asserts on the eight invariant
checks plus the attached :class:`~repro.control.ControlPlaneStats`.
"""

import dataclasses

from repro.scenario import (
    DisciplineSpec,
    OutageEvent,
    OutageSpec,
    PredictedRequest,
    ScenarioBuilder,
    ScenarioRunner,
    TopologySpec,
)
from repro.validate.invariants import invariants_summary

DIAMOND = TopologySpec.graph(
    nodes=("S-A", "S-B", "S-C", "S-D"),
    links=[
        {"src": "S-A", "dst": "S-B"},
        {"src": "S-B", "dst": "S-C"},
        {"src": "S-A", "dst": "S-D"},
        {"src": "S-D", "dst": "S-C"},
    ],
    host_attachments=(("h-src", "S-A"), ("h-dst", "S-C")),
)


def diamond_spec(outages, flows=3, sizes=None, **kwargs):
    builder = (
        ScenarioBuilder("reroute-test")
        .topology(DIAMOND)
        .disciplines(DisciplineSpec.fifo())
        .duration(kwargs.pop("duration", 20.0))
        .warmup(0.0)
        .seed(kwargs.pop("seed", 4))
        .validate(True)
    )
    for i in range(flows):
        extra = {}
        if sizes is not None:
            extra["packet_size_bits"] = sizes[i % len(sizes)]
        builder.add_flow(f"f{i}", "h-src", "h-dst", **extra)
    spec = builder.build()
    return dataclasses.replace(spec, outages=outages)


def clean_run(spec):
    run = ScenarioRunner(spec).run().runs[0]
    assert run.invariants is not None
    assert run.invariants_clean, invariants_summary(run.invariants)
    return run


class TestConservationAcrossReroutes:
    def test_single_failover_conserves_every_flow(self):
        outages = OutageSpec(
            events=(OutageEvent(link="S-A->S-B", at=7.0, duration=6.0),)
        )
        run = clean_run(diamond_spec(outages))
        ctl = run.control
        assert ctl.outages == 1 and ctl.restores == 1
        assert sum(f.reroutes for f in ctl.flows) == 2 * len(ctl.flows)

    def test_mixed_packet_sizes_conserve(self):
        """Satellite: heterogeneous per-flow packet sizes through a
        failover — the global ledger must close for every size."""
        outages = OutageSpec(
            events=(OutageEvent(link="S-A->S-B", at=7.0, duration=6.0),)
        )
        spec = diamond_spec(outages, flows=4, sizes=(400, 1000, 2400, 7200))
        assert len({f.packet_size_bits for f in spec.flows}) == 4
        run = clean_run(spec)
        for stats in run.flows:
            assert stats.received > 0

    def test_mixed_sizes_conserve_without_outages_too(self):
        spec = diamond_spec(None, flows=4, sizes=(400, 1000, 2400, 7200))
        run = clean_run(spec)
        assert run.control is None  # controller never built

    def test_flapping_link_stays_conserved(self):
        """Back-to-back flaps: three short outages in one run."""
        outages = OutageSpec(
            events=tuple(
                OutageEvent(link="S-A->S-B", at=at, duration=0.4)
                for at in (5.0, 5.5, 6.0)
            )
        )
        run = clean_run(diamond_spec(outages))
        assert run.control.outages == 3
        assert run.control.restores == 3


class TestRerouteEdgeCases:
    def test_outage_on_link_carrying_no_flows(self):
        """The failed link is off every flow's path: statistics must be
        identical to the outage-free run, packet for packet."""
        quiet = OutageSpec(
            events=(OutageEvent(link="S-D->S-C", at=7.0, duration=6.0),)
        )
        with_outage = clean_run(diamond_spec(quiet))
        without = clean_run(diamond_spec(None))
        for a, b in zip(with_outage.flows, without.flows):
            assert a.received == b.received
            assert a.mean_seconds == b.mean_seconds
        assert sum(f.reroutes for f in with_outage.control.flows) == 0

    def test_only_path_dies_is_an_accounted_teardown(self):
        """A service flow whose sole path fails: re-establishment is
        refused (no route), the source stops, and every packet already
        sent is still accounted — invariants stay clean."""
        chain = TopologySpec.graph(
            nodes=("S-A", "S-B"),
            links=[{"src": "S-A", "dst": "S-B"}],
            host_attachments=(("h-src", "S-A"), ("h-dst", "S-B")),
        )
        spec = (
            ScenarioBuilder("teardown-test")
            .topology(chain)
            .disciplines(DisciplineSpec.unified(num_predicted_classes=2))
            .admission(class_bounds_seconds=(0.15, 1.5))
            .add_flow(
                "svc",
                "h-src",
                "h-dst",
                request=PredictedRequest(
                    token_rate_bps=100_000.0,
                    bucket_depth_bits=10_000.0,
                    target_delay_seconds=1.5,
                    target_loss_rate=0.01,
                ),
            )
            .duration(20.0)
            .warmup(0.0)
            .seed(4)
            .validate(True)
            .build()
        )
        spec = dataclasses.replace(
            spec,
            outages=OutageSpec(
                events=(OutageEvent(link="S-A->S-B", at=8.0, duration=5.0),)
            ),
        )
        run = clean_run(spec)
        [flow] = run.control.flows
        assert flow.torn_down
        assert flow.refusals == 1
        assert flow.readmissions == 0
        stats = run.flow("svc")
        # The source stopped at the teardown; nothing sent afterwards.
        assert stats.emitted > 0
        assert stats.received < stats.emitted  # losses ledgered elsewhere

    def test_torn_down_flow_stays_down_after_restore(self):
        """Policy: a refused flow is not resurrected when its path heals
        (its source cannot be restarted deterministically)."""
        chain = TopologySpec.graph(
            nodes=("S-A", "S-B"),
            links=[{"src": "S-A", "dst": "S-B"}],
            host_attachments=(("h-src", "S-A"), ("h-dst", "S-B")),
        )
        spec = (
            ScenarioBuilder("stay-down-test")
            .topology(chain)
            .disciplines(DisciplineSpec.unified(num_predicted_classes=2))
            .admission(class_bounds_seconds=(0.15, 1.5))
            .add_flow(
                "svc",
                "h-src",
                "h-dst",
                request=PredictedRequest(
                    token_rate_bps=100_000.0,
                    bucket_depth_bits=10_000.0,
                    target_delay_seconds=1.5,
                    target_loss_rate=0.01,
                ),
            )
            .duration(30.0)
            .warmup(0.0)
            .seed(4)
            .validate(True)
            .build()
        )
        spec = dataclasses.replace(
            spec,
            outages=OutageSpec(
                events=(OutageEvent(link="S-A->S-B", at=5.0, duration=2.0),)
            ),
        )
        run = clean_run(spec)
        [flow] = run.control.flows
        assert flow.torn_down
        assert flow.readmissions == 0  # not re-admitted at the restore
        # Emissions stop at (or shortly after) the teardown at t=5 s.
        assert run.flow("svc").emitted < 5.0 * 200  # ~100 pps for 5 s max


class TestNewInvariants:
    def test_eligibility_checked_on_stop_and_go(self):
        spec = (
            ScenarioBuilder("sg-test")
            .single_link()
            .paper_flows(4)
            .disciplines(DisciplineSpec.stop_and_go())
            .duration(10.0)
            .warmup(0.0)
            .seed(1)
            .validate(True)
            .build()
        )
        run = clean_run(spec)
        check = run.invariant("eligibility-time")
        assert check.checked >= 1  # at least the bottleneck port
        assert check.violations == 0

    def test_eligibility_checked_on_jitter_edd(self):
        spec = (
            ScenarioBuilder("nwc-test")
            .single_link()
            .paper_flows(4)
            .disciplines(DisciplineSpec.jitter_edd())
            .duration(10.0)
            .warmup(0.0)
            .seed(1)
            .validate(True)
            .build()
        )
        run = clean_run(spec)
        assert run.invariant("eligibility-time").checked >= 1

    def test_eligibility_vacuous_on_work_conserving_ports(self):
        run = clean_run(
            ScenarioBuilder("fifo-test")
            .single_link()
            .paper_flows(4)
            .disciplines(DisciplineSpec.fifo())
            .duration(10.0)
            .warmup(0.0)
            .seed(1)
            .validate(True)
            .build()
        )
        check = run.invariant("eligibility-time")
        assert check.checked == 0
        assert "no non-work-conserving ports" in check.detail

    def test_route_liveness_clean_through_failover(self):
        outages = OutageSpec(
            events=(OutageEvent(link="S-A->S-B", at=7.0, duration=6.0),)
        )
        run = clean_run(diamond_spec(outages))
        check = run.invariant("route-liveness")
        assert check.violations == 0
        assert check.checked > 0
