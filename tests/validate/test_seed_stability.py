"""Seed stability: generated specs regenerate bit-identically.

The generators' whole value is that a ``gen_seed`` *is* the scenario:
the same seed must produce the same frozen spec in this process, after a
JSON round trip, and in a completely fresh interpreter (no shared module
state, no hash randomization leakage).
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.scenario import ScenarioSpec, TopologySpec, generators

SRC = str(Path(__file__).resolve().parents[2] / "src")

FAMILIES = {
    "random_graph": dict(gen_seed=7),
    "scale_free": dict(gen_seed=3),
    "wan_path": dict(gen_seed=5),
    "access_core": dict(gen_seed=9),
    "wan_guaranteed": dict(gen_seed=2),
}


def build(family, **overrides):
    kwargs = dict(FAMILIES[family])
    kwargs.update(overrides)
    return getattr(generators, family)(duration=10.0, **kwargs)


class TestRoundTrip:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_topology_json_round_trips_bit_identically(self, family):
        topology = build(family).topology
        payload = json.dumps(topology.to_dict())
        clone = TopologySpec.from_dict(json.loads(payload))
        assert clone == topology
        # And the serialized form itself is stable (float repr included).
        assert json.dumps(clone.to_dict()) == payload

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_full_spec_json_round_trips(self, family):
        spec = build(family)
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    @pytest.mark.parametrize("family", sorted(FAMILIES))
    def test_same_seed_regenerates_identically_in_process(self, family):
        assert build(family) == build(family)

    def test_different_seeds_differ(self):
        a = generators.random_graph(gen_seed=1, duration=10.0)
        b = generators.random_graph(gen_seed=2, duration=10.0)
        assert a.topology != b.topology


class TestCrossProcessStability:
    """A fresh interpreter samples the exact same spec from the seed."""

    @pytest.mark.parametrize("family", ["random_graph", "wan_guaranteed"])
    def test_subprocess_regeneration_bit_identical(self, family):
        spec = build(family)
        code = (
            "import json, sys\n"
            "from repro.scenario import generators\n"
            f"spec = generators.{family}("
            f"duration=10.0, **{FAMILIES[family]!r})\n"
            "json.dump(spec.to_dict(), sys.stdout, sort_keys=True)\n"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": SRC, "PYTHONHASHSEED": "random"},
        ).stdout
        assert json.loads(out) == json.loads(
            json.dumps(spec.to_dict(), sort_keys=True)
        )
        # Byte-for-byte, not merely structurally equal.
        assert out == json.dumps(spec.to_dict(), sort_keys=True)
