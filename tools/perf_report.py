#!/usr/bin/env python
"""Run the perf microbench suite and write the tracked ``BENCH_core.json``.

The report has three blocks:

* ``baseline`` — frozen measurements of the pre-fast-path engine
  (``benchmarks/perf/baseline_pre_fastpath.json``, captured once on the
  machine that founded the trajectory; kept so speedup ratios stay
  meaningful over time).
* ``current`` — this checkout, measured now.
* ``speedup`` — headline ratios current/baseline (>1 is faster).

Usage::

    PYTHONPATH=src python tools/perf_report.py            # full suite
    PYTHONPATH=src python tools/perf_report.py --quick    # CI smoke sizing
    PYTHONPATH=src python tools/perf_report.py --out BENCH_core.json

Absolute numbers are machine-dependent; compare runs from the same host
(CI uploads its report as an artifact but never gates on timings).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import platform
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "benchmarks" / "perf" / "baseline_pre_fastpath.json"

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from benchmarks.perf import microbench  # noqa: E402


def speedups(baseline: dict, current: dict) -> dict:
    """Headline current/baseline ratios (>1 means the checkout is faster)."""
    base = baseline["measurements"]
    out = {
        "raw_events_per_sec": (
            current["raw_events"]["events_per_sec"]
            / base["raw_events"]["events_per_sec"]
        ),
        "timer_churn_per_sec": (
            current["timer_churn"]["churn_per_sec"]
            / base["timer_churn"]["churn_per_sec"]
        ),
        "table1_wall_clock": (
            base["table1"]["wall_seconds"] / current["table1"]["wall_seconds"]
        ),
        "table3_wall_clock": (
            base["table3"]["wall_seconds"] / current["table3"]["wall_seconds"]
        ),
    }
    for name, row in current["scheduler_packets"].items():
        base_row = base["scheduler_packets"].get(name)
        if base_row:
            out[f"packets_per_sec[{name}]"] = (
                row["packets_per_sec"] / base_row["packets_per_sec"]
            )
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run at ~1/8 scale (CI smoke); ratios get noisier",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=REPO_ROOT / "BENCH_core.json",
        help="report path (default: BENCH_core.json at the repo root)",
    )
    args = parser.parse_args(argv)

    scale = 0.125 if args.quick else 1.0
    print(f"running perf microbenches (scale={scale:g}) ...", flush=True)
    current = microbench.run_all(scale=scale)

    with open(BASELINE_PATH) as handle:
        baseline = json.load(handle)

    report = {
        "schema": 1,
        "quick": args.quick,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "baseline": baseline,
        "current": current,
        "speedup": speedups(baseline, current),
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {args.out}")
    print(f"  raw event loop : {current['raw_events']['events_per_sec']:>12,.0f} events/s "
          f"({report['speedup']['raw_events_per_sec']:.2f}x baseline)")
    print(f"  timer churn    : {current['timer_churn']['churn_per_sec']:>12,.0f} ops/s "
          f"({report['speedup']['timer_churn_per_sec']:.2f}x baseline)")
    for name, row in current["scheduler_packets"].items():
        ratio = report["speedup"].get(f"packets_per_sec[{name}]")
        suffix = f" ({ratio:.2f}x baseline)" if ratio else ""
        print(f"  {name:<15}: {row['packets_per_sec']:>12,.0f} pkts/s{suffix}")
    print(f"  table1 wall    : {current['table1']['wall_seconds']:.3f} s "
          f"({report['speedup']['table1_wall_clock']:.2f}x baseline)")
    print(f"  table3 wall    : {current['table3']['wall_seconds']:.3f} s "
          f"({report['speedup']['table3_wall_clock']:.2f}x baseline)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
