#!/usr/bin/env python
"""Run a perf suite and write its tracked report (BENCH_*.json).

Three suites share the harness:

* ``--suite core`` (default) — engine/hot-path microbenches
  (``benchmarks/perf/microbench.py``) against the frozen pre-fast-path
  baseline; writes ``BENCH_core.json``.
* ``--suite sweep`` — sweep-orchestration benches
  (``benchmarks/perf/sweepbench.py``: wide sweep, early-stopped seed
  ladder, task overhead, pickle bytes) against the frozen per-call-Pool
  baseline; writes ``BENCH_sweep.json``.
* ``--suite fluid`` — flow-level engine benches
  (``benchmarks/perf/fluidbench.py``: flows/sec at 10k/100k/1M flows,
  packet-engine crossover) against the frozen packet-crossover
  baseline; writes ``BENCH_fluid.json``.

Every report has three blocks:

* ``baseline`` — frozen measurements of the pre-rewrite implementation,
  captured once on the machine that founded the trajectory; kept so
  speedup ratios stay meaningful over time.
* ``current`` — this checkout, measured now.
* ``speedup`` — headline ratios current/baseline (>1 is faster).

plus a ``trajectory`` array: one entry per recorded run (commit, date,
scale, the full measurement block, and the speedup ratios), carried
forward across overwrites so the report doubles as the per-PR perf
history.  The first run on an old report backfills the history from the
file's own git revisions.

Usage::

    PYTHONPATH=src python tools/perf_report.py                  # core suite
    PYTHONPATH=src python tools/perf_report.py --suite sweep
    PYTHONPATH=src python tools/perf_report.py --quick          # CI sizing
    PYTHONPATH=src python tools/perf_report.py --suite sweep \\
        --capture-baseline benchmarks/perf/baseline_sweep_precall_pool.json

Absolute numbers are machine-dependent; compare runs from the same host
(CI uploads reports as artifacts but never gates on timings).
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import platform
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))


# ----------------------------------------------------------------------
# Core suite
# ----------------------------------------------------------------------


def core_speedups(baseline: dict, current: dict) -> dict:
    """Headline current/baseline ratios (>1 means the checkout is faster)."""
    base = baseline["measurements"]
    out = {
        "raw_events_per_sec": (
            current["raw_events"]["events_per_sec"]
            / base["raw_events"]["events_per_sec"]
        ),
        "timer_churn_per_sec": (
            current["timer_churn"]["churn_per_sec"]
            / base["timer_churn"]["churn_per_sec"]
        ),
        "table1_wall_clock": (
            base["table1"]["wall_seconds"] / current["table1"]["wall_seconds"]
        ),
        "table3_wall_clock": (
            base["table3"]["wall_seconds"] / current["table3"]["wall_seconds"]
        ),
    }
    for name, row in current["scheduler_packets"].items():
        base_row = base["scheduler_packets"].get(name)
        if base_row:
            out[f"packets_per_sec[{name}]"] = (
                row["packets_per_sec"] / base_row["packets_per_sec"]
            )
    return out


def core_print(report: dict) -> None:
    current = report["current"]
    print(f"  raw event loop : {current['raw_events']['events_per_sec']:>12,.0f} events/s "
          f"({report['speedup']['raw_events_per_sec']:.2f}x baseline)")
    print(f"  timer churn    : {current['timer_churn']['churn_per_sec']:>12,.0f} ops/s "
          f"({report['speedup']['timer_churn_per_sec']:.2f}x baseline)")
    for name, row in current["scheduler_packets"].items():
        ratio = report["speedup"].get(f"packets_per_sec[{name}]")
        suffix = f" ({ratio:.2f}x baseline)" if ratio else ""
        print(f"  {name:<15}: {row['packets_per_sec']:>12,.0f} pkts/s{suffix}")
    print(f"  table1 wall    : {current['table1']['wall_seconds']:.3f} s "
          f"({report['speedup']['table1_wall_clock']:.2f}x baseline)")
    print(f"  table3 wall    : {current['table3']['wall_seconds']:.3f} s "
          f"({report['speedup']['table3_wall_clock']:.2f}x baseline)")
    seam = current.get("control_seam")
    if seam:
        print(f"  control seam   : {seam['overhead_ratio']:.3f}x outage-free overhead "
              "(contract: ~1.0)")


def core_run(scale: float) -> dict:
    from benchmarks.perf import microbench

    return microbench.run_all(scale=scale)


# ----------------------------------------------------------------------
# Sweep suite
# ----------------------------------------------------------------------


def sweep_speedups(baseline: dict, current: dict) -> dict:
    """Headline executor-vs-per-call-Pool ratios (>1 is faster/leaner).

    Wall-clock and throughput ratios only mean something when both sides
    simulated the same horizons, so they are suppressed (``None``) when
    the run's scale differs from the frozen baseline's — the ``--quick``
    CI smoke would otherwise report ~8x-inflated numbers against the
    full-scale baseline.
    """
    base = baseline["measurements"]
    scales_match = baseline.get("scale", 1.0) == current.get("scale", 1.0)
    out = {
        "wide_sweep_wall_clock": None,
        "wide_sweep_to_decision": None,
        "task_throughput": None,
        # Bytes per task don't depend on simulated horizons.
        "task_pickle_bytes": (
            base["task_pickle"]["bytes_per_task"]
            / current["task_pickle"]["executor_bytes_per_task"]
        ),
    }
    if scales_match:
        # Same simulation work, both run to completion.
        out["wide_sweep_wall_clock"] = (
            base["wide_sweep"]["wall_seconds"]
            / current["wide_sweep"]["wall_seconds"]
        )
        # Same statistical decision on the same ladder: the executor
        # early-stops at a closed confidence interval, the baseline model
        # has no streaming and pays for every seed.
        out["wide_sweep_to_decision"] = (
            base["ladder_to_decision"]["wall_seconds"]
            / current["ladder_to_decision"]["wall_seconds"]
        )
        out["task_throughput"] = (
            current["task_overhead"]["tasks_per_sec"]
            / base["task_overhead"]["tasks_per_sec"]
        )
    else:
        out["note"] = (
            "scale differs from the frozen baseline; wall-clock and "
            "throughput ratios suppressed"
        )
    return out


def sweep_print(report: dict) -> None:
    current = report["current"]
    speedup = report["speedup"]
    wide = current["wide_sweep"]
    ladder = current["ladder_to_decision"]
    overhead = current["task_overhead"]
    pkl = current["task_pickle"]

    def ratio(key: str, suffix: str = "x baseline") -> str:
        value = speedup.get(key)
        return f"({value:.2f}{suffix})" if value is not None else "(n/a)"

    print(f"  wide sweep     : {wide['runs']}x{wide['disciplines']} tasks in "
          f"{wide['wall_seconds']:.2f} s {ratio('wide_sweep_wall_clock')}")
    print(f"  ladder->CI     : {ladder['runs_completed']}/{ladder['seeds_available']} seeds, "
          f"{ladder['wall_seconds']:.2f} s "
          f"{ratio('wide_sweep_to_decision', 'x baseline full ladder')}")
    print(f"  task overhead  : {overhead['tasks_per_sec']:>8,.1f} tasks/s over "
          f"{overhead['sweeps']} sweeps, {overhead['pools_created']} pool(s) "
          f"{ratio('task_throughput')}")
    print(f"  task pickle    : {pkl['executor_bytes_per_task']:,.0f} B/task vs "
          f"{pkl['legacy_bytes_per_task']:,} legacy "
          f"({speedup['task_pickle_bytes']:.1f}x smaller)")
    if speedup.get("note"):
        print(f"  note           : {speedup['note']}")


def sweep_run(scale: float) -> dict:
    from benchmarks.perf import sweepbench

    return sweepbench.run_all(scale=scale)


# ----------------------------------------------------------------------
# Fluid suite
# ----------------------------------------------------------------------


def fluid_speedups(baseline: dict, current: dict) -> dict:
    """Fluid-vs-packet and fluid-vs-floor ratios (>1 is faster).

    The crossover ratio compares engines on the identical instance; it
    is only meaningful when this run's scale matches the frozen
    baseline's (the packet wall was captured at that scale).
    """
    base = baseline["measurements"]
    scales_match = baseline.get("scale", 1.0) == current.get("scale", 1.0)
    floor = base["fluid_floor"]
    sizes = current["scale_sweep"]
    # Compare the size matching the floor's own shape; fall back to the
    # largest (flows/sec shifts with population and fabric size).
    matching = [
        row for row in sizes.values()
        if row["num_flows"] == floor["num_flows"]
    ]
    anchor = matching[0] if matching else max(
        sizes.values(), key=lambda row: row["num_flows"]
    )
    out = {
        # Same-machine in-run comparison: always meaningful.
        "crossover_fluid_vs_packet": current["crossover"]["speedup"],
        "flows_per_sec_vs_floor": (
            anchor["flows_per_sec"] / floor["flows_per_sec"]
        ),
        "crossover_wall_clock": None,
    }
    floor_1m = base.get("fluid_floor_1m")
    if floor_1m:
        at_1m = [
            row for row in sizes.values()
            if row["num_flows"] == floor_1m["num_flows"]
        ]
        if at_1m:
            out["flows_per_sec_1m_vs_floor"] = (
                at_1m[0]["flows_per_sec"] / floor_1m["flows_per_sec"]
            )
    if scales_match:
        out["crossover_wall_clock"] = (
            base["crossover_packet"]["wall_seconds"]
            / current["crossover"]["fluid_wall_seconds"]
        )
    else:
        out["note"] = (
            "scale differs from the frozen baseline; cross-run wall-clock "
            "ratio suppressed"
        )
    return out


def fluid_print(report: dict) -> None:
    current = report["current"]
    speedup = report["speedup"]
    for key, row in sorted(
        current["scale_sweep"].items(), key=lambda kv: kv[1]["num_flows"]
    ):
        print(f"  {row['num_flows']:>9,} flows : "
              f"{row['flows_per_sec']:>12,.0f} flow-adv/s, "
              f"{row['wall_seconds']:.2f} s wall ({row['backend']})")
    crossover = current["crossover"]
    print(f"  crossover      : fluid {crossover['fluid_wall_seconds']:.2f} s vs "
          f"packet {crossover['packet_wall_seconds']:.2f} s "
          f"({speedup['crossover_fluid_vs_packet']:.1f}x), "
          f"recv rel-diff {crossover['mean_received_rel_diff']:.3f}")
    print(f"  vs floor       : {speedup['flows_per_sec_vs_floor']:.2f}x the "
          "committed flows/sec floor")
    if speedup.get("note"):
        print(f"  note           : {speedup['note']}")


def fluid_run(scale: float) -> dict:
    from benchmarks.perf import fluidbench

    return fluidbench.run_all(scale=scale)


SUITES = {
    "core": {
        "baseline": REPO_ROOT / "benchmarks" / "perf" / "baseline_pre_fastpath.json",
        "default_out": REPO_ROOT / "BENCH_core.json",
        "run": core_run,
        "speedups": core_speedups,
        "print": core_print,
    },
    "sweep": {
        "baseline": REPO_ROOT / "benchmarks" / "perf" / "baseline_sweep_precall_pool.json",
        "default_out": REPO_ROOT / "BENCH_sweep.json",
        "run": sweep_run,
        "speedups": sweep_speedups,
        "print": sweep_print,
    },
    "fluid": {
        "baseline": REPO_ROOT / "benchmarks" / "perf" / "baseline_fluid_packet.json",
        "default_out": REPO_ROOT / "BENCH_fluid.json",
        "run": fluid_run,
        "speedups": fluid_speedups,
        "print": fluid_print,
    },
}


# ----------------------------------------------------------------------
# Trajectory: the per-PR perf history carried inside each report
# ----------------------------------------------------------------------


def _git(*argv: str) -> str:
    return subprocess.run(
        ["git", *argv],
        capture_output=True,
        text=True,
        cwd=str(REPO_ROOT),
        check=True,
    ).stdout.strip()


def head_commit() -> str:
    try:
        commit = _git("rev-parse", "--short", "HEAD")
        dirty = _git("status", "--porcelain") != ""
        return commit + ("+dirty" if dirty else "")
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def trajectory_entry(report: dict, commit: str, date: str) -> dict:
    """One point of perf history: enough to plot, small enough to keep."""
    return {
        "commit": commit,
        "date": date,
        "scale": report.get("scale", 1.0),
        "quick": report.get("quick", False),
        "python": report.get("python"),
        "measurements": report["current"],
        "speedup": report["speedup"],
    }


def recover_trajectory(out: pathlib.Path) -> list:
    """Backfill perf points from every commit that touched the report.

    Older reports carried only ``current`` — the history is still in git,
    so reconstruct one entry per committed revision of the file (PR 2
    onward for ``BENCH_core.json``, PR 4 for ``BENCH_sweep.json``).
    Unreadable or pre-schema revisions are skipped, not fatal.
    """
    try:
        relpath = str(out.resolve().relative_to(REPO_ROOT))
        commits = _git(
            "log", "--reverse", "--follow", "--format=%h %ad",
            "--date=short", "--", relpath,
        ).splitlines()
    except (OSError, subprocess.CalledProcessError, ValueError):
        return []
    points = []
    for line in commits:
        commit, _, date = line.partition(" ")
        try:
            old = json.loads(_git("show", f"{commit}:{relpath}"))
            existing = old.get("trajectory")
            if existing:
                # The file already carried history at that commit; keep
                # only its newest point to avoid quadratic duplication.
                points.append(existing[-1])
            else:
                points.append(trajectory_entry(old, commit, date))
        except (subprocess.CalledProcessError, KeyError, ValueError):
            continue
    return points


def extend_trajectory(out: pathlib.Path, report: dict) -> None:
    """Append this run as a trajectory point (in place on ``report``).

    Carries forward the history already in the on-disk report, or
    backfills it from git the first time.  Re-runs on the same checkout
    replace their previous point instead of piling up.
    """
    trajectory = []
    if out.exists():
        try:
            trajectory = json.loads(out.read_text()).get("trajectory") or []
        except ValueError:
            trajectory = []
    if not trajectory:
        trajectory = recover_trajectory(out)
    commit = head_commit()
    today = datetime.date.today().isoformat()
    if trajectory and trajectory[-1].get("commit") == commit:
        trajectory = trajectory[:-1]
    trajectory.append(trajectory_entry(report, commit, today))
    report["trajectory"] = trajectory


def capture_sweep_baseline(path: pathlib.Path, scale: float) -> int:
    """Re-measure the vendored per-call-Pool model and freeze it."""
    from benchmarks.perf import sweepbench

    print(f"capturing per-call-Pool sweep baseline (scale={scale:g}) ...",
          flush=True)
    payload = {
        "note": "pre-executor sweep path (fresh Pool per call, coarse "
        "full-spec tasks, blocking map); captured via "
        "benchmarks/perf/sweepbench.run_baseline",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scale": scale,
        "measurements": sweepbench.run_baseline(scale=scale),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


def capture_fluid_baseline(path: pathlib.Path, scale: float) -> int:
    """Freeze the packet-engine crossover reference and the founding
    fluid flows/sec floor the CI gate regresses against."""
    from benchmarks.perf import fluidbench

    print(f"capturing fluid baseline (scale={scale:g}) ...", flush=True)
    payload = {
        "note": "packet engine on the crossover instance + founding fluid "
        "flows/sec floor; captured via benchmarks/perf/fluidbench"
        ".run_baseline",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "scale": scale,
        "measurements": fluidbench.run_baseline(scale=scale),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {path}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--suite",
        choices=sorted(SUITES),
        default="core",
        help="which tracked trajectory to measure (default: core)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run at ~1/8 scale (CI smoke); ratios get noisier",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="report path (default: BENCH_<suite>.json at the repo root)",
    )
    parser.add_argument(
        "--capture-baseline",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="(sweep suite) re-measure the vendored per-call-Pool model "
        "and write the frozen baseline file instead of a report",
    )
    args = parser.parse_args(argv)

    scale = 0.125 if args.quick else 1.0
    if args.capture_baseline is not None:
        if args.suite not in ("sweep", "fluid"):
            parser.error("--capture-baseline applies to --suite sweep|fluid")
        if args.quick:
            # A quick-scale baseline would silently skew every future
            # full-scale report's ratios.
            parser.error("--capture-baseline requires full scale (no --quick)")
        if args.suite == "fluid":
            return capture_fluid_baseline(args.capture_baseline, scale)
        return capture_sweep_baseline(args.capture_baseline, scale)

    suite = SUITES[args.suite]
    out = args.out if args.out is not None else suite["default_out"]
    print(f"running {args.suite} perf benches (scale={scale:g}) ...",
          flush=True)
    current = suite["run"](scale)

    with open(suite["baseline"]) as handle:
        baseline = json.load(handle)

    current["scale"] = scale
    report = {
        "schema": 1,
        "suite": args.suite,
        "quick": args.quick,
        "scale": scale,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "baseline": baseline,
        "current": current,
        "speedup": suite["speedups"](baseline, current),
    }
    extend_trajectory(out, report)
    out.write_text(json.dumps(report, indent=2) + "\n")

    print(f"wrote {out}")
    suite["print"](report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
